//! Test configuration: the YAML schema of Listings 1 and 2 of the paper,
//! plus a `network` section describing the simulated substrate (which the
//! real Lumina gets from physical hardware).

use crate::error::Error;
use lumina_rnic::Verb;
use lumina_sim::SimTime;
use serde::{Deserialize, Serialize};

/// NIC settings of one host (Listing 1's `nic` + `roce-parameters`).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct HostConfig {
    /// NIC model: `cx4`, `cx5`, `cx6`, `e810`.
    pub nic_type: String,
    /// DCQCN reaction point (rate reduction on CNPs) enabled.
    #[serde(default)]
    pub dcqcn_rp_enable: bool,
    /// DCQCN notification point (CNP generation) enabled.
    #[serde(default)]
    pub dcqcn_np_enable: bool,
    /// Configured minimum interval between CNPs, in microseconds.
    #[serde(default)]
    pub min_time_between_cnps_us: u64,
    /// NVIDIA adaptive retransmission.
    #[serde(default)]
    pub adaptive_retrans: bool,
    /// Ablation override: replace the profile's recovery-context count
    /// (the CX4 Lx noisy-neighbor knob).
    #[serde(default)]
    pub override_recovery_contexts: Option<usize>,
    /// Ablation override: force ETS work conservation on/off ("fix" the
    /// CX6 Dx or break a healthy NIC).
    #[serde(default)]
    pub override_ets_work_conserving: Option<bool>,
    /// Ablation override: APM slow-path queue capacity (the CX5 interop
    /// knob).
    #[serde(default)]
    pub override_apm_queue_capacity: Option<usize>,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            nic_type: "cx5".into(),
            dcqcn_rp_enable: false,
            dcqcn_np_enable: false,
            min_time_between_cnps_us: 4,
            adaptive_retrans: false,
            override_recovery_contexts: None,
            override_ets_work_conserving: None,
            override_apm_queue_capacity: None,
        }
    }
}

impl HostConfig {
    /// Resolve the device profile with any ablation overrides applied.
    pub fn resolved_profile(&self) -> Option<lumina_rnic::DeviceProfile> {
        let mut p = lumina_rnic::DeviceProfile::by_name(&self.nic_type)?;
        self.apply_overrides(&mut p);
        Some(p)
    }

    /// Apply this host's ablation overrides to an already-resolved profile
    /// (the `device:` section path resolves through the registry first).
    pub fn apply_overrides(&self, p: &mut lumina_rnic::DeviceProfile) {
        if let Some(n) = self.override_recovery_contexts {
            match p.noisy_neighbor.as_mut() {
                Some(m) => m.recovery_contexts = n,
                None => {
                    p.noisy_neighbor = Some(lumina_rnic::profile::NoisyNeighborModel {
                        recovery_contexts: n,
                    })
                }
            }
        }
        if let Some(wc) = self.override_ets_work_conserving {
            p.ets_work_conserving = wc;
        }
        if let Some(cap) = self.override_apm_queue_capacity {
            if let Some(apm) = p.apm_slowpath_on_migreq0.as_mut() {
                apm.queue_capacity = cap;
            }
        }
    }
}

/// One injection event (Listing 2's `data-pkt-events` entries). QPN and
/// PSN are *relative*: `qpn: 1` is the first connection, `psn: 4` the
/// fourth data packet, `iter: 2` its first retransmission.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct EventSpec {
    /// 1-based connection index.
    pub qpn: u32,
    /// 1-based data-packet index within the connection.
    pub psn: u32,
    /// Event type: `drop`, `ecn`, `corrupt`, `set-mig-0`, `set-mig-1`,
    /// `delay`, `reorder` (the last two implement §7's future-work list).
    pub r#type: String,
    /// 1-based transmission round (1 = first transmission).
    #[serde(default = "one")]
    pub iter: u32,
    /// Extension: repeat the event every `every` data packets starting at
    /// `psn` (used for "mark one of every 50 packets" scenarios like the
    /// Figure 10 ETS experiment). 0 = no repetition.
    #[serde(default)]
    pub every: u32,
    /// For `type: delay` — extra hold time in microseconds.
    #[serde(default)]
    pub delay_us: u64,
    /// For `type: reorder` — release the packet after this many subsequent
    /// data packets of the connection have passed.
    #[serde(default = "one")]
    pub reorder_by: u32,
}

fn one() -> u32 {
    1
}

/// Traffic shape (Listing 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct TrafficConfig {
    /// Number of QP connections.
    pub num_connections: u32,
    /// Verb: `write`, `read` or `send` — or a `+`-separated combination
    /// (e.g. `send+read`), cycled across messages, which generates the
    /// bi-directional data traffic §3.2 describes.
    pub rdma_verb: String,
    /// Messages per QP.
    pub num_msgs_per_qp: u32,
    /// Path MTU.
    pub mtu: u32,
    /// Message size in bytes.
    pub message_size: u32,
    /// Give each connection its own source IP (GID), emulating traffic
    /// from multiple hosts.
    #[serde(default)]
    pub multi_gid: bool,
    /// Barrier synchronization across QPs.
    #[serde(default)]
    pub barrier_sync: bool,
    /// Maximum outstanding messages per QP.
    #[serde(default = "one")]
    pub tx_depth: u32,
    /// IB timeout code (`4.096 µs × 2^code`).
    #[serde(default = "default_timeout")]
    pub min_retransmit_timeout: u8,
    /// IB retry count.
    #[serde(default = "default_retry")]
    pub max_retransmit_retry: u32,
    /// Events to inject on data packets.
    #[serde(default)]
    pub data_pkt_events: Vec<EventSpec>,
    /// ETS traffic class of each connection (index into `ets.queues`);
    /// empty = all class 0.
    #[serde(default)]
    pub qp_traffic_class: Vec<usize>,
}

fn default_timeout() -> u8 {
    14
}
fn default_retry() -> u32 {
    7
}

impl TrafficConfig {
    /// Primary verb: the first of the (possibly combined) verb list. Event
    /// intents target this verb's data direction.
    pub fn verb(&self) -> Result<Verb, Error> {
        Ok(self.verbs()?[0])
    }

    /// All verbs of the (possibly `+`-combined) `rdma-verb` field.
    pub fn verbs(&self) -> Result<Vec<Verb>, Error> {
        let out: Result<Vec<Verb>, Error> = self
            .rdma_verb
            .split('+')
            .map(|part| {
                Verb::from_config_str(part.trim())
                    .ok_or_else(|| Error::config(format!("unknown rdma-verb {part:?}")))
            })
            .collect();
        let out = out?;
        if out.is_empty() {
            return Err(Error::config("empty rdma-verb"));
        }
        Ok(out)
    }

    /// Data packets per message at this MTU. A zero MTU (caught by
    /// validation, but callable before it) counts as one packet per
    /// message rather than dividing by zero.
    pub fn pkts_per_msg(&self) -> u32 {
        if self.message_size == 0 || self.mtu == 0 {
            1
        } else {
            self.message_size.div_ceil(self.mtu)
        }
    }
}

/// One ETS queue (traffic class).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct EtsQueueConfig {
    /// Weight among non-strict queues.
    pub weight: u32,
    /// Strict priority.
    #[serde(default)]
    pub strict: bool,
}

/// ETS configuration (defaults to one best-effort queue).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct EtsSection {
    /// The queues.
    pub queues: Vec<EtsQueueConfig>,
}

impl Default for EtsSection {
    fn default() -> Self {
        EtsSection {
            queues: vec![EtsQueueConfig {
                weight: 100,
                strict: false,
            }],
        }
    }
}

/// Which switch program runs — the Figure 7 variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
#[derive(Default)]
pub enum SwitchMode {
    /// Full Lumina: injection + mirroring.
    #[default]
    Lumina,
    /// Lumina without mirroring ("Lumina-nm").
    LuminaNm,
    /// Lumina without event injection ("Lumina-ne").
    LuminaNe,
    /// Plain L2 forwarding baseline.
    L2Forward,
}

/// The simulated substrate (our stand-in for the physical testbed).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct NetworkConfig {
    /// Deterministic seed; same seed + same config = identical trace.
    #[serde(default = "default_seed")]
    pub seed: u64,
    /// One-way propagation delay per link, nanoseconds.
    #[serde(default = "default_prop")]
    pub propagation_delay_ns: u64,
    /// Number of traffic-dumper hosts.
    #[serde(default = "default_dumpers")]
    pub num_dumpers: usize,
    /// CPU cores per dumper.
    #[serde(default = "default_cores")]
    pub dumper_cores: usize,
    /// Per-core dumper service rate, packets per second.
    #[serde(default = "default_core_rate")]
    pub dumper_core_rate_pps: u64,
    /// Switch program variant.
    #[serde(default)]
    pub switch_mode: SwitchMode,
    /// Disable the switch's UDP-port randomization for dumper RSS (the
    /// §3.4 ablation).
    #[serde(default)]
    pub no_dport_randomization: bool,
    /// Mirror per ingress port instead of WRR pooling (the §3.4 ablation).
    #[serde(default)]
    pub per_port_mirroring: bool,
    /// Simulation horizon in milliseconds (safety stop).
    #[serde(default = "default_horizon")]
    pub horizon_ms: u64,
    /// Per-core dumper RX ring capacity, packets.
    #[serde(default = "default_ring_capacity")]
    pub dumper_ring_capacity: usize,
    /// Watchdog: abort the run (exit code 7) after this many simulation
    /// events. Absent = the engine's own 500 M safety limit.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_events: Option<u64>,
    /// Watchdog: abort the run (exit code 7) after this much host wall
    /// time, milliseconds. Absent = no wall-clock limit.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_wall_ms: Option<u64>,
}

fn default_seed() -> u64 {
    1
}
fn default_prop() -> u64 {
    500
}
fn default_dumpers() -> usize {
    3
}
fn default_cores() -> usize {
    8
}
fn default_core_rate() -> u64 {
    2_500_000
}
fn default_horizon() -> u64 {
    30_000
}
fn default_ring_capacity() -> usize {
    1024
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            seed: default_seed(),
            propagation_delay_ns: default_prop(),
            num_dumpers: default_dumpers(),
            dumper_cores: default_cores(),
            dumper_core_rate_pps: default_core_rate(),
            switch_mode: SwitchMode::default(),
            no_dport_randomization: false,
            per_port_mirroring: false,
            horizon_ms: default_horizon(),
            dumper_ring_capacity: default_ring_capacity(),
            max_events: None,
            max_wall_ms: None,
        }
    }
}

/// A dumper core stall in the `faults:` section: for `duration-us` starting
/// at `at-us`, the affected dumper's service loop runs `slowdown`× slower.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct StallSpec {
    /// Which dumper host (0-based); absent = every dumper.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub index: Option<usize>,
    /// Stall start, microseconds of simulation time.
    pub at_us: u64,
    /// Stall length, microseconds (≥ 1).
    pub duration_us: u64,
    /// Service-interval multiplier (≥ 1).
    #[serde(default = "default_slowdown")]
    pub slowdown: u32,
}

fn default_slowdown() -> u32 {
    10
}

/// A mid-run node outage in the `faults:` section: the node loses arriving
/// frames and defers its timers until the window ends (freeze + restart).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct FreezeSpec {
    /// Which node: `requester`, `responder`, `switch` or `dumper`.
    pub node: String,
    /// For `node: dumper` — which dumper host (0-based).
    #[serde(default)]
    pub index: usize,
    /// Freeze start, microseconds of simulation time.
    pub at_us: u64,
    /// Outage length, microseconds (≥ 1).
    pub duration_us: u64,
}

/// Deterministic infrastructure fault injection (`faults:`). Absent — the
/// default — means a pristine testbed and byte-identical behavior to every
/// pre-fault-plane release.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct FaultsSection {
    /// Fault-schedule seed; absent = derived from `network.seed`. Separate
    /// so campaigns can sweep fault schedules while holding the workload
    /// fixed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Probability each switch→dumper mirror copy is dropped in flight.
    #[serde(default)]
    pub mirror_loss_prob: f64,
    /// Probability each switch→dumper mirror copy is delivered twice.
    #[serde(default)]
    pub mirror_dup_prob: f64,
    /// Probability each stored capture has one bit flipped.
    #[serde(default)]
    pub capture_bit_rot_prob: f64,
    /// Dumper core stall windows.
    #[serde(default)]
    pub dumper_stalls: Vec<StallSpec>,
    /// Node freeze/restart windows.
    #[serde(default)]
    pub freezes: Vec<FreezeSpec>,
}

impl FaultsSection {
    /// True when the section injects nothing — the orchestrator then skips
    /// building a fault plane entirely, keeping the run on the pristine
    /// code path.
    pub fn is_noop(&self) -> bool {
        self.mirror_loss_prob == 0.0
            && self.mirror_dup_prob == 0.0
            && self.capture_bit_rot_prob == 0.0
            && self.dumper_stalls.is_empty()
            && self.freezes.is_empty()
    }
}

/// DUT misbehavior injection (`quirks:`): makes the RNIC models emit
/// spec-violating traffic on demand so the conformance oracle can be
/// exercised closed-loop. Absent — the default — means spec-faithful
/// devices and byte-identical behavior to every pre-quirk release.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct QuirksSection {
    /// Quirk-schedule seed; absent = derived from `network.seed`.
    /// Separate so campaigns can sweep misbehavior while holding the
    /// workload fixed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Probability an ACK carries a PSN the requester never sent.
    #[serde(default)]
    pub wrong_ack_psn_prob: f64,
    /// Probability a due ACK is silently swallowed.
    #[serde(default)]
    pub ack_drop_prob: f64,
    /// Probability a due ACK is withheld and folded into the next one.
    #[serde(default)]
    pub ack_coalesce_prob: f64,
    /// Probability a spec-mandated CNP is suppressed at the NP.
    #[serde(default)]
    pub cnp_suppress_prob: f64,
    /// Probability a data packet triggers a CNP with no CE mark behind it.
    #[serde(default)]
    pub cnp_spurious_prob: f64,
    /// Probability a data packet is followed by an unprovoked duplicate
    /// of the QP's previous data packet.
    #[serde(default)]
    pub ghost_retransmit_prob: f64,
    /// Probability an AETH carries a regressed (stale) MSN.
    #[serde(default)]
    pub stale_msn_prob: f64,
    /// Probability a Go-back-N NACK names ePSN+1 instead of ePSN.
    #[serde(default)]
    pub gbn_off_by_one_prob: f64,
    /// Probability an emitted data frame carries a miscomputed ICRC.
    #[serde(default)]
    pub icrc_corrupt_prob: f64,
}

impl QuirksSection {
    /// True when the section injects nothing — the orchestrator then skips
    /// installing quirk planes entirely, keeping the run on the pristine
    /// code path (zero extra RNG draws, byte-identical reports).
    pub fn is_noop(&self) -> bool {
        !self.knobs().any()
    }

    /// The per-device knob block handed to the RNIC misbehavior plane.
    pub fn knobs(&self) -> lumina_rnic::QuirkKnobs {
        lumina_rnic::QuirkKnobs {
            wrong_ack_psn: self.wrong_ack_psn_prob,
            ack_drop: self.ack_drop_prob,
            ack_coalesce: self.ack_coalesce_prob,
            cnp_suppress: self.cnp_suppress_prob,
            cnp_spurious: self.cnp_spurious_prob,
            ghost_retransmit: self.ghost_retransmit_prob,
            stale_msn: self.stale_msn_prob,
            gbn_off_by_one: self.gbn_off_by_one_prob,
            icrc_corrupt: self.icrc_corrupt_prob,
        }
    }
}

/// Packet-lifecycle tracing (`trace:`): turns on the flight recorder so
/// every instrumented hop appends a `(trace_id, hop, sim_time)` record,
/// the report gains a `"trace"` latency dissection, and the `trace`
/// subcommand can export a Perfetto timeline. Absent — the default —
/// means no recorder, no extra report keys, and byte-identical goldens.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct TraceSection {
    /// Master switch; present-but-disabled keeps the run pristine.
    #[serde(default = "default_true")]
    pub enabled: bool,
    /// Flight-recorder ring capacity, records (oldest evicted when full).
    #[serde(default = "default_trace_capacity")]
    pub capacity: usize,
    /// Per-hop p99 latency budgets for the `latency` analyzer,
    /// microseconds — e.g. `link.ingress: 10`. Empty = no budget checks.
    #[serde(default, skip_serializing_if = "std::collections::BTreeMap::is_empty")]
    pub hop_budget_us: std::collections::BTreeMap<String, u64>,
}

impl Default for TraceSection {
    fn default() -> Self {
        TraceSection {
            enabled: true,
            capacity: default_trace_capacity(),
            hop_budget_us: std::collections::BTreeMap::new(),
        }
    }
}

impl TraceSection {
    /// True when the section records nothing — the orchestrator then
    /// leaves the recorder off, keeping the run on the pristine path.
    pub fn is_noop(&self) -> bool {
        !self.enabled
    }
}

fn default_true() -> bool {
    true
}

fn default_trace_capacity() -> usize {
    262_144
}

/// Device selection (`device:`): pick both NICs from the typed
/// [`lumina_rnic::DeviceRegistry`] by canonical name and declare which
/// registry columns `lumina-cli matrix` sweeps. Absent — the default —
/// means the per-host `nic-type` fields select the devices, byte-identical
/// to every pre-registry release (no new report keys).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct DeviceSection {
    /// Requester NIC, a registry name (`cx4`, `CX6-Dx`, `e810`, `cx8`,
    /// …). Overrides `requester.nic-type`; ablation overrides still apply.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub requester: Option<String>,
    /// Responder NIC, a registry name. Overrides `responder.nic-type`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub responder: Option<String>,
    /// Device columns for the `matrix` subcommand; empty = the whole
    /// registry.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub matrix: Vec<String>,
}

impl DeviceSection {
    /// True when the section selects nothing.
    pub fn is_noop(&self) -> bool {
        self.requester.is_none() && self.responder.is_none() && self.matrix.is_empty()
    }
}

/// A chaos window in the `chaos:` section: `[at-us, at-us + duration-us)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct ChaosWindowSpec {
    /// Window start, microseconds of simulation time.
    pub at_us: u64,
    /// Window length, microseconds (≥ 1).
    pub duration_us: u64,
}

impl ChaosWindowSpec {
    /// Lower the schema window into the sim-layer representation.
    pub fn to_window(self) -> lumina_sim::ChaosWindow {
        lumina_sim::ChaosWindow {
            from: SimTime::from_micros(self.at_us),
            until: SimTime::from_micros(self.at_us + self.duration_us),
        }
    }
}

/// A sustained seeded burst regime in the `chaos:` section: while the
/// window is open, every frame handed to the covered link independently
/// risks loss, tail-byte corruption, or a fixed reorder delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct ChaosBurstSpec {
    /// Burst start, microseconds of simulation time.
    pub at_us: u64,
    /// Burst length, microseconds (≥ 1).
    pub duration_us: u64,
    /// Per-frame drop probability inside the window.
    #[serde(default)]
    pub loss_prob: f64,
    /// Per-frame tail-byte bit-flip probability inside the window.
    #[serde(default)]
    pub corrupt_prob: f64,
    /// Per-frame extra-delay (reorder) probability inside the window.
    #[serde(default)]
    pub reorder_prob: f64,
    /// Extra arrival delay applied to reordered frames, microseconds.
    #[serde(default = "default_reorder_delay_us")]
    pub reorder_delay_us: u64,
}

fn default_reorder_delay_us() -> u64 {
    5
}

impl ChaosBurstSpec {
    /// Lower the schema burst into the sim-layer representation.
    pub fn to_regime(self) -> lumina_sim::BurstRegime {
        lumina_sim::BurstRegime {
            window: lumina_sim::ChaosWindow {
                from: SimTime::from_micros(self.at_us),
                until: SimTime::from_micros(self.at_us + self.duration_us),
            },
            loss_prob: self.loss_prob,
            corrupt_prob: self.corrupt_prob,
            reorder_prob: self.reorder_prob,
            reorder_delay: SimTime::from_micros(self.reorder_delay_us),
        }
    }
}

/// Per-link chaos schedule in the `chaos:` section. `link` names a
/// host↔switch data link; the schedule covers both directions.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct ChaosLinkSpec {
    /// Which data link: `requester` (requester↔switch) or `responder`
    /// (responder↔switch).
    pub link: String,
    /// Link-flap windows: in-flight and arriving frames are dropped.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub flaps: Vec<ChaosWindowSpec>,
    /// PFC-style pause windows: serialization stalls, nothing drops.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub pauses: Vec<ChaosWindowSpec>,
    /// Sustained seeded loss/corruption/reorder burst regimes.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub bursts: Vec<ChaosBurstSpec>,
}

impl ChaosLinkSpec {
    /// Lower the schema schedule into the sim-layer representation.
    pub fn to_chaos(&self) -> lumina_sim::LinkChaos {
        lumina_sim::LinkChaos {
            flaps: self.flaps.iter().map(|w| w.to_window()).collect(),
            pauses: self.pauses.iter().map(|w| w.to_window()).collect(),
            bursts: self.bursts.iter().map(|b| b.to_regime()).collect(),
        }
    }
}

/// Data-path chaos injection (`chaos:`): sustained fault regimes — link
/// flaps, PFC-style pauses, seeded loss/corruption/reorder bursts — on the
/// host↔switch data links, paired with the liveness/recovery oracle.
/// Absent — the default — means a pristine data path, zero extra RNG
/// draws, and byte-identical behavior to every pre-chaos release.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct ChaosSection {
    /// Chaos-schedule seed; absent = derived from `network.seed`.
    /// Separate so soak campaigns can sweep chaos schedules while holding
    /// the workload fixed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub seed: Option<u64>,
    /// Retransmit-amplification bound per chaos window: retransmitted
    /// frames may not exceed `limit × dropped` + a small constant slack.
    /// Absent = the recovery oracle's built-in default.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub amplification_limit: Option<f64>,
    /// Per-link chaos schedules.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub links: Vec<ChaosLinkSpec>,
}

impl ChaosSection {
    /// True when the section injects nothing — the orchestrator then skips
    /// building a chaos plane entirely, keeping the run on the pristine
    /// code path (zero extra RNG draws, byte-identical reports).
    pub fn is_noop(&self) -> bool {
        self.links.iter().all(|l| l.to_chaos().is_noop())
    }

    /// Every chaos window (flap/pause/burst) across all links, sorted —
    /// the recovery oracle keys its per-window histograms to these.
    pub fn windows(&self) -> Vec<lumina_sim::ChaosWindow> {
        let mut out: Vec<lumina_sim::ChaosWindow> = Vec::new();
        for l in &self.links {
            out.extend(l.flaps.iter().map(|w| w.to_window()));
            out.extend(l.pauses.iter().map(|w| w.to_window()));
            out.extend(l.bursts.iter().map(|b| b.to_regime().window));
        }
        out.sort_by_key(|w| (w.from, w.until));
        out.dedup();
        out
    }
}

/// A complete test configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case", deny_unknown_fields)]
pub struct TestConfig {
    /// Requester host (Listing 1).
    #[serde(default)]
    pub requester: HostConfig,
    /// Responder host.
    #[serde(default)]
    pub responder: HostConfig,
    /// Traffic and events (Listing 2).
    pub traffic: TrafficConfig,
    /// ETS queues.
    #[serde(default)]
    pub ets: EtsSection,
    /// Simulated substrate.
    #[serde(default)]
    pub network: NetworkConfig,
    /// Infrastructure fault injection; absent = pristine testbed.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub faults: Option<FaultsSection>,
    /// DUT misbehavior injection; absent = spec-faithful devices.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub quirks: Option<QuirksSection>,
    /// Packet-lifecycle tracing; absent = recorder off, pristine report.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub trace: Option<TraceSection>,
    /// Registry-based device selection; absent = `nic-type` fields apply.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub device: Option<DeviceSection>,
    /// Data-path chaos injection; absent = pristine data path.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub chaos: Option<ChaosSection>,
}

impl TestConfig {
    /// Parse from YAML. Schema errors (wrong type, unknown field, missing
    /// section) surface as [`Error::Config`] naming the offending field.
    pub fn from_yaml(s: &str) -> Result<TestConfig, Error> {
        serde_yaml::from_str(s).map_err(|e| Error::config(e.to_string()))
    }

    /// Serialize to YAML.
    pub fn to_yaml(&self) -> String {
        serde_yaml::to_string(self).expect("config serializes")
    }

    /// Configured minimum CNP interval of the responder NP.
    pub fn min_cnp_interval(&self, responder_side: bool) -> SimTime {
        let host = if responder_side {
            &self.responder
        } else {
            &self.requester
        };
        SimTime::from_micros(host.min_time_between_cnps_us)
    }

    /// The device query string selecting a role's NIC: the `device:`
    /// section override when present, the host's `nic-type` otherwise.
    pub fn device_query(&self, responder_side: bool) -> &str {
        let section = self.device.as_ref().and_then(|d| {
            if responder_side {
                d.responder.as_deref()
            } else {
                d.requester.as_deref()
            }
        });
        section.unwrap_or(if responder_side {
            &self.responder.nic_type
        } else {
            &self.requester.nic_type
        })
    }

    /// Resolve a role's device through the registry (honoring the
    /// `device:` section), then apply that host's ablation overrides.
    pub fn resolved_device(&self, responder_side: bool) -> Option<lumina_rnic::DeviceProfile> {
        let reg = lumina_rnic::DeviceRegistry::builtin();
        let mut p = reg.get(self.device_query(responder_side))?;
        let host = if responder_side {
            &self.responder
        } else {
            &self.requester
        };
        host.apply_overrides(&mut p);
        Some(p)
    }

    /// Validate the configuration: the orchestrator's entry point. Every
    /// problem found is reported at once, each naming its field.
    pub fn validate(&self) -> Result<(), Error> {
        let problems = self.problems();
        if problems.is_empty() {
            Ok(())
        } else {
            Err(Error::Config { problems })
        }
    }

    /// Basic sanity checks; returns a list of problems (empty = valid).
    pub fn problems(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.traffic.num_connections == 0 {
            problems.push("num-connections must be ≥ 1".into());
        }
        if self.traffic.mtu == 0 || self.traffic.mtu > 4096 {
            problems.push(format!("mtu {} out of range (1..=4096)", self.traffic.mtu));
        }
        if self.traffic.verb().is_err() {
            problems.push(format!("unknown rdma-verb {:?}", self.traffic.rdma_verb));
        }
        // Device resolution: the `device:` section override wins per role;
        // either way an unresolvable name lists what the registry offers.
        let registry = lumina_rnic::DeviceRegistry::builtin();
        let available = registry.names().join(", ");
        for responder_side in [false, true] {
            let role = if responder_side {
                "responder"
            } else {
                "requester"
            };
            let query = self.device_query(responder_side);
            if registry.get(query).is_none() {
                problems.push(format!(
                    "unknown {role} nic {query:?} (available: {available})"
                ));
            }
        }
        if let Some(dev) = &self.device {
            for (i, name) in dev.matrix.iter().enumerate() {
                if registry.get(name).is_none() {
                    problems.push(format!(
                        "device: matrix entry {i}: unknown device {name:?} (available: {available})"
                    ));
                }
            }
        }
        if self.traffic.min_retransmit_timeout >= 32 {
            problems.push("min-retransmit-timeout must be a 5-bit code".into());
        }
        let ppm = self.traffic.pkts_per_msg();
        for (i, ev) in self.traffic.data_pkt_events.iter().enumerate() {
            if ev.qpn == 0 || ev.qpn > self.traffic.num_connections {
                problems.push(format!("event {i}: qpn {} out of range", ev.qpn));
            }
            if ev.psn == 0 || (ev.every == 0 && ev.psn > ppm * self.traffic.num_msgs_per_qp) {
                problems.push(format!("event {i}: psn {} out of range", ev.psn));
            }
            if ev.iter == 0 {
                problems.push(format!("event {i}: iter must be ≥ 1"));
            }
            if !matches!(
                ev.r#type.as_str(),
                "drop" | "ecn" | "corrupt" | "set-mig-0" | "set-mig-1" | "delay" | "reorder"
            ) {
                problems.push(format!("event {i}: unknown type {:?}", ev.r#type));
            }
            if ev.r#type == "delay" && ev.delay_us == 0 {
                problems.push(format!("event {i}: delay requires delay-us ≥ 1"));
            }
            if ev.r#type == "reorder" && ev.reorder_by == 0 {
                problems.push(format!("event {i}: reorder-by must be ≥ 1"));
            }
        }
        for (i, &tc) in self.traffic.qp_traffic_class.iter().enumerate() {
            if tc >= self.ets.queues.len() {
                problems.push(format!("qp {i}: traffic class {tc} out of range"));
            }
        }
        if self.network.dumper_ring_capacity == 0 {
            problems.push("dumper-ring-capacity must be ≥ 1".into());
        }
        if self.network.max_events == Some(0) {
            problems.push("max-events must be ≥ 1".into());
        }
        if let Some(faults) = &self.faults {
            let prob = |name: &str, p: f64, problems: &mut Vec<String>| {
                if !(0.0..=1.0).contains(&p) {
                    problems.push(format!("faults: {name} {p} not a probability"));
                }
            };
            prob("mirror-loss-prob", faults.mirror_loss_prob, &mut problems);
            prob("mirror-dup-prob", faults.mirror_dup_prob, &mut problems);
            prob(
                "capture-bit-rot-prob",
                faults.capture_bit_rot_prob,
                &mut problems,
            );
            for (i, s) in faults.dumper_stalls.iter().enumerate() {
                if s.duration_us == 0 {
                    problems.push(format!("faults: stall {i}: duration-us must be ≥ 1"));
                }
                if s.slowdown == 0 {
                    problems.push(format!("faults: stall {i}: slowdown must be ≥ 1"));
                }
                if let Some(idx) = s.index {
                    if idx >= self.network.num_dumpers {
                        problems.push(format!(
                            "faults: stall {i}: dumper index {idx} out of range (num-dumpers {})",
                            self.network.num_dumpers
                        ));
                    }
                }
            }
            for (i, fz) in faults.freezes.iter().enumerate() {
                if fz.duration_us == 0 {
                    problems.push(format!("faults: freeze {i}: duration-us must be ≥ 1"));
                }
                match fz.node.as_str() {
                    "requester" | "responder" | "switch" => {}
                    "dumper" => {
                        if fz.index >= self.network.num_dumpers {
                            problems.push(format!(
                                "faults: freeze {i}: dumper index {} out of range (num-dumpers {})",
                                fz.index, self.network.num_dumpers
                            ));
                        }
                    }
                    other => {
                        problems.push(format!("faults: freeze {i}: unknown node {other:?}"));
                    }
                }
            }
        }
        if let Some(quirks) = &self.quirks {
            let prob = |name: &str, p: f64, problems: &mut Vec<String>| {
                if !(0.0..=1.0).contains(&p) {
                    problems.push(format!("quirks: {name} {p} not a probability"));
                }
            };
            prob(
                "wrong-ack-psn-prob",
                quirks.wrong_ack_psn_prob,
                &mut problems,
            );
            prob("ack-drop-prob", quirks.ack_drop_prob, &mut problems);
            prob("ack-coalesce-prob", quirks.ack_coalesce_prob, &mut problems);
            prob("cnp-suppress-prob", quirks.cnp_suppress_prob, &mut problems);
            prob("cnp-spurious-prob", quirks.cnp_spurious_prob, &mut problems);
            prob(
                "ghost-retransmit-prob",
                quirks.ghost_retransmit_prob,
                &mut problems,
            );
            prob("stale-msn-prob", quirks.stale_msn_prob, &mut problems);
            prob(
                "gbn-off-by-one-prob",
                quirks.gbn_off_by_one_prob,
                &mut problems,
            );
            prob("icrc-corrupt-prob", quirks.icrc_corrupt_prob, &mut problems);
        }
        if let Some(chaos) = &self.chaos {
            if chaos.amplification_limit.is_some_and(|l| l <= 0.0 || l.is_nan()) {
                problems.push(format!(
                    "chaos: amplification-limit {} must be > 0",
                    chaos.amplification_limit.unwrap_or(0.0)
                ));
            }
            for (i, l) in chaos.links.iter().enumerate() {
                if !matches!(l.link.as_str(), "requester" | "responder") {
                    problems.push(format!("chaos: link {i}: unknown link {:?}", l.link));
                }
                for (j, w) in l.flaps.iter().enumerate() {
                    if w.duration_us == 0 {
                        problems.push(format!(
                            "chaos: link {i}: flap {j}: duration-us must be ≥ 1"
                        ));
                    }
                }
                for (j, w) in l.pauses.iter().enumerate() {
                    if w.duration_us == 0 {
                        problems.push(format!(
                            "chaos: link {i}: pause {j}: duration-us must be ≥ 1"
                        ));
                    }
                }
                for (j, b) in l.bursts.iter().enumerate() {
                    if b.duration_us == 0 {
                        problems.push(format!(
                            "chaos: link {i}: burst {j}: duration-us must be ≥ 1"
                        ));
                    }
                    let prob = |name: &str, p: f64, problems: &mut Vec<String>| {
                        if !(0.0..=1.0).contains(&p) {
                            problems.push(format!(
                                "chaos: link {i}: burst {j}: {name} {p} not a probability"
                            ));
                        }
                    };
                    prob("loss-prob", b.loss_prob, &mut problems);
                    prob("corrupt-prob", b.corrupt_prob, &mut problems);
                    prob("reorder-prob", b.reorder_prob, &mut problems);
                }
            }
        }
        if let Some(trace) = &self.trace {
            if trace.capacity == 0 {
                problems.push("trace: capacity must be ≥ 1".into());
            }
            for (hop, &budget) in &trace.hop_budget_us {
                if budget == 0 {
                    problems.push(format!("trace: hop-budget-us {hop:?} must be ≥ 1"));
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Listing 2, adapted to this schema.
    const LISTING2: &str = r#"
requester:
  nic-type: cx4
  dcqcn-rp-enable: false
  dcqcn-np-enable: true
  min-time-between-cnps-us: 0
  adaptive-retrans: false
responder:
  nic-type: cx4
  dcqcn-np-enable: true
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: 10
  mtu: 1024
  message-size: 10240
  multi-gid: true
  barrier-sync: true
  tx-depth: 1
  min-retransmit-timeout: 14
  max-retransmit-retry: 7
  data-pkt-events:
    # Mark ECN on the 4th pkt of the 1st QP conn
    - {qpn: 1, psn: 4, type: ecn, iter: 1}
    # Drop the 5th pkt of the 2nd QP conn
    - {qpn: 2, psn: 5, type: drop, iter: 1}
    # Drop the retransmitted 5th pkt of the 2nd QP conn
    - {qpn: 2, psn: 5, type: drop, iter: 2}
"#;

    #[test]
    fn parses_listing2() {
        let cfg = TestConfig::from_yaml(LISTING2).unwrap();
        assert_eq!(cfg.requester.nic_type, "cx4");
        assert!(cfg.requester.dcqcn_np_enable);
        assert!(!cfg.requester.dcqcn_rp_enable);
        assert_eq!(cfg.traffic.num_connections, 2);
        assert_eq!(cfg.traffic.verb().unwrap(), Verb::Write);
        assert!(cfg.traffic.barrier_sync);
        assert_eq!(cfg.traffic.data_pkt_events.len(), 3);
        let ev = &cfg.traffic.data_pkt_events[2];
        assert_eq!((ev.qpn, ev.psn, ev.iter), (2, 5, 2));
        assert_eq!(ev.r#type, "drop");
        assert!(cfg.validate().is_ok(), "{:?}", cfg.problems());
    }

    #[test]
    fn yaml_roundtrip() {
        let cfg = TestConfig::from_yaml(LISTING2).unwrap();
        let cfg2 = TestConfig::from_yaml(&cfg.to_yaml()).unwrap();
        assert_eq!(cfg2.traffic.message_size, 10240);
        assert_eq!(cfg2.traffic.data_pkt_events.len(), 3);
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = TestConfig::from_yaml(LISTING2).unwrap();
        cfg.traffic.num_connections = 0;
        cfg.traffic.rdma_verb = "bogus".into();
        cfg.requester.nic_type = "cx9".into();
        cfg.traffic.data_pkt_events[0].qpn = 99;
        let problems = cfg.problems();
        assert!(problems.len() >= 4, "{problems:?}");
        let err = cfg.validate().unwrap_err().to_string();
        assert!(
            err.contains("rdma-verb") && err.contains("num-connections"),
            "{err}"
        );
    }

    #[test]
    fn defaults_are_sane() {
        let minimal = r#"
traffic:
  num-connections: 1
  rdma-verb: read
  num-msgs-per-qp: 5
  mtu: 1024
  message-size: 4096
"#;
        let cfg = TestConfig::from_yaml(minimal).unwrap();
        assert_eq!(cfg.traffic.tx_depth, 1);
        assert_eq!(cfg.traffic.min_retransmit_timeout, 14);
        assert_eq!(cfg.traffic.max_retransmit_retry, 7);
        assert_eq!(cfg.network.num_dumpers, 3);
        assert_eq!(cfg.network.switch_mode, SwitchMode::Lumina);
        assert_eq!(cfg.ets.queues.len(), 1);
        assert_eq!(cfg.traffic.pkts_per_msg(), 4);
        assert!(cfg.validate().is_ok());
    }

    /// Malformed-YAML inputs must produce errors that name the offending
    /// field, so a fuzz campaign (or a human) can fix the config from the
    /// message alone.
    #[test]
    fn errors_name_the_offending_field() {
        // Structurally valid YAML, semantically bad PSN (0 is 1-based).
        let bad_psn = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
  data-pkt-events:
    - {qpn: 1, psn: 0, type: drop}
"#;
        let err = TestConfig::from_yaml(bad_psn)
            .unwrap()
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("psn"), "{err}");

        let zero_mtu = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 0
  message-size: 1024
"#;
        let err = TestConfig::from_yaml(zero_mtu)
            .unwrap()
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("mtu"), "{err}");

        let bad_type = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
  data-pkt-events:
    - {qpn: 1, psn: 1, type: explode}
"#;
        let err = TestConfig::from_yaml(bad_type)
            .unwrap()
            .validate()
            .unwrap_err()
            .to_string();
        assert!(err.contains("type") && err.contains("explode"), "{err}");
    }

    #[test]
    fn faults_section_parses_and_round_trips() {
        let yaml = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 5
  mtu: 1024
  message-size: 4096
faults:
  mirror-loss-prob: 0.05
  mirror-dup-prob: 0.01
  capture-bit-rot-prob: 0.002
  dumper-stalls:
    - {at-us: 100, duration-us: 500, slowdown: 8, index: 1}
    - {at-us: 700, duration-us: 100}
  freezes:
    - {node: dumper, index: 0, at-us: 200, duration-us: 50}
    - {node: responder, at-us: 400, duration-us: 25}
"#;
        let cfg = TestConfig::from_yaml(yaml).unwrap();
        let faults = cfg.faults.as_ref().unwrap();
        assert!(!faults.is_noop());
        assert_eq!(faults.mirror_loss_prob, 0.05);
        assert_eq!(faults.dumper_stalls[0].index, Some(1));
        assert_eq!(faults.dumper_stalls[1].index, None, "absent = all dumpers");
        assert_eq!(faults.dumper_stalls[1].slowdown, 10, "default slowdown");
        assert_eq!(faults.freezes[1].node, "responder");
        assert!(cfg.validate().is_ok(), "{:?}", cfg.problems());
        let cfg2 = TestConfig::from_yaml(&cfg.to_yaml()).unwrap();
        assert_eq!(cfg2.faults.unwrap().dumper_stalls.len(), 2);
    }

    #[test]
    fn absent_faults_section_stays_absent() {
        let cfg = TestConfig::from_yaml(LISTING2).unwrap();
        assert!(cfg.faults.is_none());
        assert!(
            !cfg.to_yaml().contains("faults"),
            "skip-serializing must keep pristine configs pristine"
        );
        assert!(FaultsSection::default().is_noop());
    }

    #[test]
    fn fault_validation_catches_bad_values() {
        let yaml = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
faults:
  mirror-loss-prob: 1.5
  dumper-stalls:
    - {at-us: 0, duration-us: 0, slowdown: 0, index: 99}
  freezes:
    - {node: marsrover, at-us: 0, duration-us: 1}
    - {node: dumper, index: 44, at-us: 0, duration-us: 0}
"#;
        let problems = TestConfig::from_yaml(yaml).unwrap().problems();
        let all = problems.join("\n");
        assert!(all.contains("mirror-loss-prob"), "{all}");
        assert!(all.contains("stall 0: duration-us"), "{all}");
        assert!(all.contains("stall 0: slowdown"), "{all}");
        assert!(all.contains("index 99 out of range"), "{all}");
        assert!(all.contains("unknown node \"marsrover\""), "{all}");
        assert!(all.contains("index 44 out of range"), "{all}");
    }

    #[test]
    fn quirks_section_parses_and_round_trips() {
        let yaml = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 5
  mtu: 1024
  message-size: 4096
quirks:
  seed: 99
  wrong-ack-psn-prob: 0.1
  ack-coalesce-prob: 0.25
  icrc-corrupt-prob: 0.01
"#;
        let cfg = TestConfig::from_yaml(yaml).unwrap();
        let quirks = cfg.quirks.as_ref().unwrap();
        assert!(!quirks.is_noop());
        assert_eq!(quirks.seed, Some(99));
        assert_eq!(quirks.wrong_ack_psn_prob, 0.1);
        assert_eq!(quirks.ack_drop_prob, 0.0, "unset knobs default to 0");
        let knobs = quirks.knobs();
        assert!(knobs.any());
        assert_eq!(knobs.ack_coalesce, 0.25);
        assert!(cfg.validate().is_ok(), "{:?}", cfg.problems());
        let cfg2 = TestConfig::from_yaml(&cfg.to_yaml()).unwrap();
        assert_eq!(cfg2.quirks.unwrap().icrc_corrupt_prob, 0.01);
    }

    #[test]
    fn absent_quirks_section_stays_absent() {
        let cfg = TestConfig::from_yaml(LISTING2).unwrap();
        assert!(cfg.quirks.is_none());
        assert!(
            !cfg.to_yaml().contains("quirks"),
            "skip-serializing must keep pristine configs pristine"
        );
        assert!(QuirksSection::default().is_noop());
    }

    #[test]
    fn absent_trace_section_stays_absent() {
        let cfg = TestConfig::from_yaml(LISTING2).unwrap();
        assert!(cfg.trace.is_none());
        assert!(
            !cfg.to_yaml().contains("trace:"),
            "skip-serializing must keep pristine configs pristine"
        );
        // Default section = tracing on; explicit `enabled: false` = noop.
        assert!(!TraceSection::default().is_noop());
    }

    #[test]
    fn trace_section_parses_and_validates() {
        let yaml = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
trace:
  capacity: 4096
  hop-budget-us:
    link.ingress: 10
    switch.forward: 2
"#;
        let cfg = TestConfig::from_yaml(yaml).unwrap();
        let trace = cfg.trace.as_ref().unwrap();
        assert!(trace.enabled, "enabled defaults to true when present");
        assert_eq!(trace.capacity, 4096);
        assert_eq!(trace.hop_budget_us["link.ingress"], 10);
        assert!(cfg.problems().is_empty());

        let bad = TestConfig::from_yaml(
            r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
trace:
  capacity: 0
  hop-budget-us:
    link.ingress: 0
"#,
        )
        .unwrap();
        let problems = bad.problems();
        assert!(
            problems.iter().any(|p| p.contains("capacity")),
            "{problems:?}"
        );
        assert!(
            problems.iter().any(|p| p.contains("hop-budget-us")),
            "{problems:?}"
        );
        let off = TraceSection {
            enabled: false,
            ..TraceSection::default()
        };
        assert!(off.is_noop());
    }

    #[test]
    fn quirk_validation_catches_bad_probabilities() {
        let yaml = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
quirks:
  ack-drop-prob: 1.5
  gbn-off-by-one-prob: -0.25
"#;
        let problems = TestConfig::from_yaml(yaml).unwrap().problems();
        let all = problems.join("\n");
        assert!(all.contains("quirks: ack-drop-prob 1.5"), "{all}");
        assert!(all.contains("quirks: gbn-off-by-one-prob -0.25"), "{all}");
    }

    #[test]
    fn watchdog_limits_parse_and_validate() {
        let yaml = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
network:
  max-events: 1000000
  max-wall-ms: 5000
  dumper-ring-capacity: 64
"#;
        let cfg = TestConfig::from_yaml(yaml).unwrap();
        assert_eq!(cfg.network.max_events, Some(1_000_000));
        assert_eq!(cfg.network.max_wall_ms, Some(5_000));
        assert_eq!(cfg.network.dumper_ring_capacity, 64);
        assert!(cfg.validate().is_ok());
        let mut bad = cfg.clone();
        bad.network.dumper_ring_capacity = 0;
        bad.network.max_events = Some(0);
        let all = bad.problems().join("\n");
        assert!(all.contains("dumper-ring-capacity"), "{all}");
        assert!(all.contains("max-events"), "{all}");
    }

    #[test]
    fn unknown_fields_rejected() {
        let bad = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
  bogus-field: 7
"#;
        assert!(TestConfig::from_yaml(bad).is_err());
    }
}
