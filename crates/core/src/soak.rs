//! The deterministic chaos soak harness behind `lumina-cli soak`.
//!
//! Long-horizon robustness sweep: every preset in a directory is run
//! under `--scenarios` randomized chaos schedules (link flaps, PFC-style
//! pauses, loss/corruption/reorder bursts on the host↔switch links), and
//! the liveness/recovery oracle grades each run. The point is *Laminar*'s
//! (PAPERS.md) — transport correctness must hold under sustained load,
//! not just under the paper's single-probe events.
//!
//! Determinism contract, same as the fuzz and matrix campaigns:
//!
//! * Schedules are drawn up front on the campaign thread from a
//!   [`SimRng`] mixed per (preset, scenario) — iteration order never
//!   touches the RNG, so the schedule set depends only on `--seed`.
//! * Execution uses the PR 2 cursor-executor idiom: a shared atomic
//!   cursor feeds worker threads and results land in their slots, so the
//!   assembled report is byte-identical for any `--workers` value.
//! * The report carries no wall-clock numbers.
//!
//! Presets that already declare an active `chaos:` section (demos like
//! `chaos_demo.yaml`) are *skipped*, not swept: their schedule is the
//! point of the preset, and overwriting it with a generated one would
//! grade something else.

use crate::analyzers::RecoveryReport;
use crate::config::{ChaosBurstSpec, ChaosLinkSpec, ChaosSection, ChaosWindowSpec, TestConfig};
use crate::error::Error;
use crate::fuzz::{run_caught, EvalFailure};
use lumina_sim::SimRng;
use serde::Serialize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Salt separating the soak schedule stream from every other consumer of
/// the user-facing seed.
pub const SOAK_SEED_SALT: u64 = 0x50ac_5eed_c0de_f011;

/// Parameters of one soak sweep.
#[derive(Debug, Clone)]
pub struct SoakParams {
    /// Randomized chaos schedules generated per preset.
    pub scenarios_per_preset: u32,
    /// Seed for the schedule PRNG (the presets' workload seeds are never
    /// touched).
    pub seed: u64,
    /// Worker threads; `<= 1` runs serially on the calling thread.
    pub workers: usize,
}

impl Default for SoakParams {
    fn default() -> Self {
        SoakParams {
            scenarios_per_preset: 3,
            seed: 1,
            workers: 1,
        }
    }
}

/// One preset × schedule cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioOutcome {
    /// Preset file stem.
    pub preset: String,
    /// Scenario index within the preset.
    pub scenario: u32,
    /// The chaos-plane seed this scenario ran under.
    pub chaos_seed: u64,
    /// `live`, `liveness` (oracle proved a wedge), `error` or `panic`.
    pub status: String,
    /// Violation summary or error message, when not `live`.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub detail: Option<String>,
    /// The recovery oracle's full verdict, when the run finished.
    #[serde(skip_serializing_if = "Option::is_none")]
    pub recovery: Option<RecoveryReport>,
}

/// The assembled sweep: scenarios in (preset, scenario) order.
#[derive(Debug, Clone, Serialize)]
pub struct SoakReport {
    /// Schedule-PRNG seed.
    pub seed: u64,
    /// Schedules generated per preset.
    pub scenarios_per_preset: u32,
    /// Preset stems swept, in order.
    pub presets: Vec<String>,
    /// Presets skipped because they already declare active chaos.
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub skipped: Vec<String>,
    /// Every scenario outcome.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Scenarios the oracle proved live.
    pub live: usize,
    /// Scenarios with proven liveness violations.
    pub liveness_failures: usize,
    /// Scenarios that failed to run (typed error or panic).
    pub errors: usize,
    /// Engine events dispatched, summed over completed scenarios. A
    /// deterministic count (the sim is bit-deterministic), so it survives
    /// the byte-identical-across-workers contract; the bench gate divides
    /// it by wall time for `soak_events_per_sec`.
    pub events: u64,
}

impl SoakReport {
    /// Machine-readable form. Deterministic: field order fixed, no
    /// wall-clock values, so same-seed sweeps serialize byte-identically.
    pub fn to_json(&self) -> Result<serde_json::Value, Error> {
        serde_json::to_value(self)
            .map_err(|e| Error::internal(format!("soak report failed to serialize: {e}")))
    }

    /// Terminal rendering: the headline, then one row per scenario.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "soak: seed={} presets={} scenarios={} live={} liveness={} errors={}\n",
            self.seed,
            self.presets.len(),
            self.scenarios.len(),
            self.live,
            self.liveness_failures,
            self.errors,
        ));
        for s in &self.skipped {
            out.push_str(&format!("  (skipped {s}: preset declares its own chaos)\n"));
        }
        for sc in &self.scenarios {
            let windows = sc.recovery.as_ref().map_or(0, |r| r.windows.len());
            let retrans = sc.recovery.as_ref().map_or(0, |r| r.retransmits);
            out.push_str(&format!(
                "  {:<24} #{} seed={:#018x}: {:<8} windows={} retransmits={}\n",
                sc.preset, sc.scenario, sc.chaos_seed, sc.status, windows, retrans,
            ));
            if let Some(detail) = &sc.detail {
                out.push_str(&format!("    !! {detail}\n"));
            }
        }
        out
    }

    /// Summary of the first proven liveness failure, for `Error::Liveness`.
    pub fn first_liveness_failure(&self) -> Option<String> {
        self.scenarios
            .iter()
            .find(|s| s.status == "liveness")
            .map(|s| {
                format!(
                    "{} scenario {}: {}",
                    s.preset,
                    s.scenario,
                    s.detail.as_deref().unwrap_or("liveness violation")
                )
            })
    }
}

/// Load the presets a sweep covers: every `*.yaml` in `path` (sorted by
/// file name), or just `path` itself when it is a file.
pub fn collect_presets(path: &str) -> Result<Vec<(String, TestConfig)>, Error> {
    let meta = std::fs::metadata(path).map_err(|source| Error::Io {
        path: path.to_string(),
        source,
    })?;
    let mut files: Vec<std::path::PathBuf> = if meta.is_dir() {
        std::fs::read_dir(path)
            .map_err(|source| Error::Io {
                path: path.to_string(),
                source,
            })?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "yaml" || x == "yml"))
            .collect()
    } else {
        vec![std::path::PathBuf::from(path)]
    };
    files.sort();
    let mut presets = Vec::with_capacity(files.len());
    for f in files {
        let stem = f
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| f.display().to_string());
        let yaml = std::fs::read_to_string(&f).map_err(|source| Error::Io {
            path: f.display().to_string(),
            source,
        })?;
        let cfg = TestConfig::from_yaml(&yaml)
            .map_err(|e| Error::config(format!("{}: {e}", f.display())))?;
        cfg.validate()
            .map_err(|e| Error::config(format!("{}: {e}", f.display())))?;
        presets.push((stem, cfg));
    }
    if presets.is_empty() {
        return Err(Error::config(format!("{path}: no presets to soak")));
    }
    Ok(presets)
}

/// Per-(preset, scenario) schedule seed: order-free mixing so the
/// schedule set depends only on the user seed, never on sweep order.
fn scenario_seed(seed: u64, preset: u64, scenario: u64) -> u64 {
    (seed ^ SOAK_SEED_SALT)
        .wrapping_add(preset.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(scenario.wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
}

/// Draw one randomized chaos schedule scaled to the preset's horizon.
/// Windows land in the first 30% of the horizon and stay short (≤ 2%),
/// leaving the stack ample room to recover before end-of-run: a soak
/// failure then means a real wedge, not a schedule that ate the horizon.
fn gen_schedule(rng: &mut SimRng, horizon_us: u64, chaos_seed: u64) -> ChaosSection {
    let h = horizon_us.max(1_000);
    let start_lo = h / 20;
    let start_hi = (h * 3 / 10).max(start_lo + 1);
    let max_dur = (h / 50).max(20);
    let afflicted: &[&str] = match rng.below(3) {
        0 => &["requester"],
        1 => &["responder"],
        _ => &["requester", "responder"],
    };
    let mut links = Vec::new();
    for link in afflicted {
        let mut spec = ChaosLinkSpec {
            link: (*link).to_string(),
            flaps: Vec::new(),
            pauses: Vec::new(),
            bursts: Vec::new(),
        };
        let n_windows = 1 + rng.below(2);
        for _ in 0..n_windows {
            let at_us = rng.range_inclusive(start_lo, start_hi);
            let duration_us = rng.range_inclusive(max_dur / 4 + 1, max_dur);
            match rng.below(3) {
                0 => spec.flaps.push(ChaosWindowSpec { at_us, duration_us }),
                1 => spec.pauses.push(ChaosWindowSpec { at_us, duration_us }),
                _ => spec.bursts.push(ChaosBurstSpec {
                    at_us,
                    duration_us,
                    // ≥ 1% loss so a burst window is never a silent noop.
                    loss_prob: (1 + rng.below(7)) as f64 / 100.0,
                    corrupt_prob: rng.below(4) as f64 / 100.0,
                    reorder_prob: rng.below(8) as f64 / 100.0,
                    reorder_delay_us: rng.range_inclusive(2, 12),
                }),
            }
        }
        links.push(spec);
    }
    ChaosSection {
        seed: Some(chaos_seed),
        amplification_limit: None,
        links,
    }
}

struct SoakJob {
    preset: String,
    scenario: u32,
    chaos_seed: u64,
    cfg: TestConfig,
}

/// Run the sweep. Scenario schedules are generated up front (serial,
/// order-free seeding); execution fans out over `params.workers`.
pub fn sweep(presets: &[(String, TestConfig)], params: &SoakParams) -> Result<SoakReport, Error> {
    let scenarios = params.scenarios_per_preset.max(1);
    let mut jobs: Vec<SoakJob> = Vec::new();
    let mut swept = Vec::new();
    let mut skipped = Vec::new();
    let mut preset_index = 0u64;
    for (name, base) in presets {
        if base.chaos.as_ref().is_some_and(|c| !c.is_noop()) {
            skipped.push(name.clone());
            continue;
        }
        swept.push(name.clone());
        for s in 0..scenarios {
            let chaos_seed = scenario_seed(params.seed, preset_index, s as u64);
            let mut rng = SimRng::seed_from_u64(chaos_seed);
            let horizon_us = base.network.horizon_ms.saturating_mul(1_000);
            let mut cfg = base.clone();
            cfg.chaos = Some(gen_schedule(&mut rng, horizon_us, chaos_seed));
            jobs.push(SoakJob {
                preset: name.clone(),
                scenario: s,
                chaos_seed,
                cfg,
            });
        }
        preset_index += 1;
    }

    // The PR 2 executor idiom: shared cursor, results land in slots.
    let mut slots: Vec<Option<Result<crate::orchestrator::TestResults, EvalFailure>>> =
        (0..jobs.len()).map(|_| None).collect();
    if params.workers <= 1 {
        for (slot, job) in jobs.iter().enumerate() {
            slots[slot] = Some(run_caught(&job.cfg));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<crate::orchestrator::TestResults, EvalFailure>)>> =
            Mutex::new(Vec::with_capacity(jobs.len()));
        std::thread::scope(|scope| {
            for _ in 0..params.workers.min(jobs.len().max(1)) {
                let cursor = &cursor;
                let jobs = &jobs;
                let collected = &collected;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let j = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(j) else {
                            break;
                        };
                        local.push((j, run_caught(&job.cfg)));
                    }
                    collected
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .extend(local);
                });
            }
        });
        for (slot, res) in collected.into_inner().unwrap_or_else(|e| e.into_inner()) {
            slots[slot] = Some(res);
        }
    }

    let mut outcomes = Vec::with_capacity(jobs.len());
    let (mut live, mut liveness_failures, mut errors) = (0usize, 0usize, 0usize);
    let mut events = 0u64;
    for (job, slot) in jobs.iter().zip(slots) {
        let outcome = match slot.expect("every scenario ran") {
            Ok(res) => {
                events = events.saturating_add(res.engine_stats.events);
                match res.recovery {
                    Some(rec) if !rec.live => {
                        liveness_failures += 1;
                        ScenarioOutcome {
                            preset: job.preset.clone(),
                            scenario: job.scenario,
                            chaos_seed: job.chaos_seed,
                            status: "liveness".into(),
                            detail: Some(rec.violation_summary()),
                            recovery: Some(rec),
                        }
                    }
                    rec => {
                        live += 1;
                        ScenarioOutcome {
                            preset: job.preset.clone(),
                            scenario: job.scenario,
                            chaos_seed: job.chaos_seed,
                            status: "live".into(),
                            detail: None,
                            recovery: rec,
                        }
                    }
                }
            }
            Err(EvalFailure::Error(e)) => {
                errors += 1;
                ScenarioOutcome {
                    preset: job.preset.clone(),
                    scenario: job.scenario,
                    chaos_seed: job.chaos_seed,
                    status: "error".into(),
                    detail: Some(e.to_string()),
                    recovery: None,
                }
            }
            Err(EvalFailure::Panic(msg)) => {
                errors += 1;
                ScenarioOutcome {
                    preset: job.preset.clone(),
                    scenario: job.scenario,
                    chaos_seed: job.chaos_seed,
                    status: "panic".into(),
                    detail: Some(msg),
                    recovery: None,
                }
            }
        };
        outcomes.push(outcome);
    }

    Ok(SoakReport {
        seed: params.seed,
        scenarios_per_preset: scenarios,
        presets: swept,
        skipped,
        scenarios: outcomes,
        live,
        liveness_failures,
        errors,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 4
  mtu: 1024
  message-size: 4096
network:
  seed: 7
  horizon-ms: 1000
"#;

    fn presets() -> Vec<(String, TestConfig)> {
        vec![("base".to_string(), TestConfig::from_yaml(BASE).unwrap())]
    }

    #[test]
    fn schedules_depend_only_on_seed_not_order() {
        let a = scenario_seed(1, 0, 0);
        let b = scenario_seed(1, 0, 1);
        let c = scenario_seed(1, 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, scenario_seed(1, 0, 0));
    }

    #[test]
    fn generated_schedules_validate_and_are_never_noop() {
        for seed in 0..32u64 {
            let mut rng = SimRng::seed_from_u64(seed);
            let section = gen_schedule(&mut rng, 1_000_000, seed);
            assert!(!section.is_noop(), "seed {seed} drew a noop schedule");
            let mut cfg = TestConfig::from_yaml(BASE).unwrap();
            cfg.chaos = Some(section);
            assert!(
                cfg.problems().is_empty(),
                "seed {seed}: {:?}",
                cfg.problems()
            );
        }
    }

    #[test]
    fn sweep_is_byte_identical_for_any_worker_count() {
        let presets = presets();
        let params = |workers| SoakParams {
            scenarios_per_preset: 2,
            seed: 11,
            workers,
        };
        let serial = sweep(&presets, &params(1)).unwrap();
        let two = sweep(&presets, &params(2)).unwrap();
        let four = sweep(&presets, &params(4)).unwrap();
        let bytes = |r: &SoakReport| serde_json::to_string(&r.to_json().unwrap()).unwrap();
        assert_eq!(bytes(&serial), bytes(&two));
        assert_eq!(bytes(&serial), bytes(&four));
        assert_eq!(serial.scenarios.len(), 2);
    }

    #[test]
    fn presets_with_active_chaos_are_skipped() {
        let mut cfg = TestConfig::from_yaml(BASE).unwrap();
        cfg.chaos = Some(ChaosSection {
            seed: None,
            amplification_limit: None,
            links: vec![ChaosLinkSpec {
                link: "requester".into(),
                flaps: vec![ChaosWindowSpec {
                    at_us: 10,
                    duration_us: 5,
                }],
                pauses: Vec::new(),
                bursts: Vec::new(),
            }],
        });
        let presets = vec![
            ("demo".to_string(), cfg),
            ("base".to_string(), TestConfig::from_yaml(BASE).unwrap()),
        ];
        let rep = sweep(
            &presets,
            &SoakParams {
                scenarios_per_preset: 1,
                ..SoakParams::default()
            },
        )
        .unwrap();
        assert_eq!(rep.skipped, vec!["demo".to_string()]);
        assert_eq!(rep.presets, vec!["base".to_string()]);
        assert!(rep.scenarios.iter().all(|s| s.preset == "base"));
    }
}
