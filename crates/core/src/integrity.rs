//! The §3.5 integrity check: a trace is analyzable only when
//!
//! 1. consecutive mirror sequence numbers are present,
//! 2. the number of packets the injector mirrored equals the trace length,
//! 3. the number of RoCE packets the injector received equals the trace
//!    length.
//!
//! A damaged capture no longer discards the run: reconstruction is
//! gap-tolerant ([`lumina_dumper::reconstruct_lossy`]), the partial trace
//! is returned for analysis, and the report carries a [`DegradedMode`]
//! block stating exactly how much survived. The check still *fails* — a
//! degraded trace is never integrity-clean — but it fails with data
//! instead of with nothing.

use lumina_dumper::{reconstruct_lossy, CapturedPacket, GapSpan, Trace};
use lumina_switch::device::SwitchCounters;
use serde::{Deserialize, Serialize};

/// How many gap spans the report lists verbatim before truncating.
const MAX_REPORTED_GAPS: usize = 16;

/// Degraded-capture detail: present only when reconstruction found gaps,
/// duplicates or unparseable captures. Absent from fault-free reports
/// (and from every golden) via `skip_serializing_if`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DegradedMode {
    /// Fraction of the expected mirror-sequence range that survived.
    pub analyzable_fraction: f64,
    /// Packets present in the partial trace.
    pub present: u64,
    /// Packets missing from interior sequence gaps.
    pub missing: u64,
    /// Extra copies discarded by seq dedup.
    pub duplicates: u64,
    /// Captures dropped because their headers did not parse.
    pub bad_captures: u64,
    /// The gap spans themselves (first [`MAX_REPORTED_GAPS`]).
    pub gaps: Vec<GapSpan>,
    /// True when more gaps existed than `gaps` lists.
    pub gaps_truncated: bool,
}

/// Outcome of the integrity check.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntegrityReport {
    /// Condition 1: mirror sequence numbers are consecutive (no gaps,
    /// duplicates or unparseable captures).
    pub seq_consecutive: bool,
    /// Condition 2: mirrored count matches trace length.
    pub mirrored_matches: bool,
    /// Condition 3: RoCE RX count matches trace length.
    pub roce_rx_matches: bool,
    /// Human-readable details for failures.
    pub details: Vec<String>,
    /// Degraded-capture accounting; `None` when reconstruction was clean.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub degraded: Option<DegradedMode>,
}

impl IntegrityReport {
    /// All three conditions hold.
    pub fn passed(&self) -> bool {
        self.seq_consecutive && self.mirrored_matches && self.roce_rx_matches
    }

    /// True when the trace exists but is incomplete: analyzers may run,
    /// with caveats.
    pub fn is_degraded(&self) -> bool {
        self.degraded.is_some()
    }
}

/// Reconstruct the trace from all dumpers' captures and run the check.
/// Always returns the best trace the captures support — possibly partial,
/// never `None` — alongside the report; a damaged capture shows up as a
/// failed check with [`IntegrityReport::degraded`] populated.
pub fn check(
    captures: &[Vec<CapturedPacket>],
    switch: &SwitchCounters,
) -> (Option<Trace>, IntegrityReport) {
    let mut report = IntegrityReport::default();
    let lossy = reconstruct_lossy(captures);
    report.seq_consecutive = lossy.is_complete();
    if !lossy.gaps.is_empty() {
        report.details.push(format!(
            "{} mirror copies missing across {} gaps (first gap: seq {}, len {})",
            lossy.missing(),
            lossy.gaps.len(),
            lossy.gaps[0].start,
            lossy.gaps[0].len,
        ));
    }
    if lossy.duplicates > 0 {
        report.details.push(format!(
            "{} duplicated mirror copies discarded",
            lossy.duplicates
        ));
    }
    if lossy.bad_captures > 0 {
        report
            .details
            .push(format!("{} captures failed to parse", lossy.bad_captures));
    }
    let n = lossy.trace.len() as u64;
    report.mirrored_matches = switch.mirrored_total == n;
    if !report.mirrored_matches {
        report.details.push(format!(
            "injector mirrored {} packets but the trace holds {n}",
            switch.mirrored_total
        ));
    }
    report.roce_rx_matches = switch.roce_rx_total == n;
    if !report.roce_rx_matches {
        report.details.push(format!(
            "injector received {} RoCE packets but the trace holds {n}",
            switch.roce_rx_total
        ));
    }
    if !lossy.is_complete() {
        let gaps_truncated = lossy.gaps.len() > MAX_REPORTED_GAPS;
        report.degraded = Some(DegradedMode {
            analyzable_fraction: lossy.analyzable_fraction(),
            present: n,
            missing: lossy.missing(),
            duplicates: lossy.duplicates,
            bad_captures: lossy.bad_captures,
            gaps: lossy.gaps.iter().take(MAX_REPORTED_GAPS).copied().collect(),
            gaps_truncated,
        });
    }
    (Some(lossy.trace), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumina_packet::builder::DataPacketBuilder;
    use lumina_packet::opcode::Opcode;
    use lumina_sim::SimTime;
    use lumina_switch::events::EventType;
    use lumina_switch::mirror;

    fn capture(seq: u64) -> CapturedPacket {
        let mut buf = DataPacketBuilder::new()
            .opcode(Opcode::RdmaWriteOnly)
            .psn(seq as u32)
            .payload_len(64)
            .build()
            .emit()
            .to_vec();
        mirror::embed(
            &mut buf,
            seq,
            SimTime::from_nanos(seq),
            EventType::None,
            None,
        );
        CapturedPacket {
            rx_time: SimTime::ZERO,
            orig_len: buf.len(),
            bytes: buf,
        }
    }

    fn counters(mirrored: u64, roce_rx: u64) -> SwitchCounters {
        SwitchCounters {
            mirrored_total: mirrored,
            roce_rx_total: roce_rx,
            ..Default::default()
        }
    }

    #[test]
    fn all_conditions_pass() {
        let caps = vec![vec![capture(0), capture(2)], vec![capture(1)]];
        let (trace, rep) = check(&caps, &counters(3, 3));
        assert!(rep.passed(), "{rep:?}");
        assert!(!rep.is_degraded());
        assert_eq!(trace.unwrap().len(), 3);
    }

    #[test]
    fn gap_fails_condition_one_but_keeps_the_partial_trace() {
        let caps = vec![vec![capture(0), capture(2)]];
        let (trace, rep) = check(&caps, &counters(3, 3));
        let trace = trace.expect("degraded, not absent");
        assert_eq!(trace.len(), 2, "both surviving packets analyzable");
        assert!(!rep.passed());
        assert!(!rep.seq_consecutive);
        assert!(!rep.details.is_empty());
        let deg = rep.degraded.expect("degraded block present");
        assert_eq!(deg.present, 2);
        assert_eq!(deg.missing, 1);
        assert_eq!(deg.gaps, vec![GapSpan { start: 1, len: 1 }]);
        assert!(!deg.gaps_truncated);
        assert!((deg.analyzable_fraction - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn count_mismatch_fails_conditions_two_three() {
        let caps = vec![vec![capture(0), capture(1)]];
        let (trace, rep) = check(&caps, &counters(5, 4));
        assert!(trace.is_some(), "trace still returned for debugging");
        assert!(rep.seq_consecutive);
        assert!(!rep.mirrored_matches);
        assert!(!rep.roce_rx_matches);
        assert!(!rep.passed());
        assert_eq!(rep.details.len(), 2);
        assert!(
            !rep.is_degraded(),
            "count mismatch alone (tail loss) is not capture damage"
        );
    }

    #[test]
    fn clean_report_serializes_without_degraded_key() {
        let caps = vec![vec![capture(0), capture(1)]];
        let (_, rep) = check(&caps, &counters(2, 2));
        let v = serde_json::to_value(&rep).unwrap();
        assert!(
            v.get("degraded").is_none(),
            "golden byte-identity depends on this: {v}"
        );
        let (_, bad) = check(&[vec![capture(0), capture(2)]], &counters(3, 3));
        let v = serde_json::to_value(&bad).unwrap();
        assert!(v.get("degraded").is_some());
    }

    #[test]
    fn duplicates_degrade_instead_of_discarding() {
        let caps = vec![vec![capture(0), capture(1), capture(1)]];
        let (trace, rep) = check(&caps, &counters(2, 2));
        assert_eq!(trace.unwrap().len(), 2);
        assert!(!rep.seq_consecutive);
        assert!(rep.mirrored_matches, "dedup recovers the true count");
        let deg = rep.degraded.unwrap();
        assert_eq!(deg.duplicates, 1);
        assert_eq!(deg.missing, 0);
        assert_eq!(deg.analyzable_fraction, 1.0);
    }
}
