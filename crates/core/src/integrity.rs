//! The §3.5 integrity check: a trace is analyzable only when
//!
//! 1. consecutive mirror sequence numbers are present,
//! 2. the number of packets the injector mirrored equals the trace length,
//! 3. the number of RoCE packets the injector received equals the trace
//!    length.

use lumina_dumper::{reconstruct, CapturedPacket, ReconstructError, Trace};
use lumina_switch::device::SwitchCounters;
use serde::{Deserialize, Serialize};

/// Outcome of the integrity check.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct IntegrityReport {
    /// Condition 1: mirror sequence numbers are consecutive.
    pub seq_consecutive: bool,
    /// Condition 2: mirrored count matches trace length.
    pub mirrored_matches: bool,
    /// Condition 3: RoCE RX count matches trace length.
    pub roce_rx_matches: bool,
    /// Human-readable details for failures.
    pub details: Vec<String>,
}

impl IntegrityReport {
    /// All three conditions hold.
    pub fn passed(&self) -> bool {
        self.seq_consecutive && self.mirrored_matches && self.roce_rx_matches
    }
}

/// Reconstruct the trace from all dumpers' captures and run the check.
/// Returns the trace even on count mismatches (it may still be useful for
/// debugging) but `None` when reconstruction itself failed.
pub fn check(
    captures: &[Vec<CapturedPacket>],
    switch: &SwitchCounters,
) -> (Option<Trace>, IntegrityReport) {
    let mut report = IntegrityReport::default();
    let trace = match reconstruct(captures) {
        Ok(t) => t,
        Err(e @ ReconstructError::Gaps { .. }) | Err(e @ ReconstructError::DuplicateSeq(_)) => {
            report.details.push(e.to_string());
            report.mirrored_matches = false;
            report.roce_rx_matches = false;
            return (None, report);
        }
        Err(e) => {
            report.details.push(e.to_string());
            return (None, report);
        }
    };
    report.seq_consecutive = true;
    let n = trace.len() as u64;
    report.mirrored_matches = switch.mirrored_total == n;
    if !report.mirrored_matches {
        report.details.push(format!(
            "injector mirrored {} packets but the trace holds {n}",
            switch.mirrored_total
        ));
    }
    report.roce_rx_matches = switch.roce_rx_total == n;
    if !report.roce_rx_matches {
        report.details.push(format!(
            "injector received {} RoCE packets but the trace holds {n}",
            switch.roce_rx_total
        ));
    }
    (Some(trace), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumina_packet::builder::DataPacketBuilder;
    use lumina_packet::opcode::Opcode;
    use lumina_sim::SimTime;
    use lumina_switch::events::EventType;
    use lumina_switch::mirror;

    fn capture(seq: u64) -> CapturedPacket {
        let mut buf = DataPacketBuilder::new()
            .opcode(Opcode::RdmaWriteOnly)
            .psn(seq as u32)
            .payload_len(64)
            .build()
            .emit()
            .to_vec();
        mirror::embed(&mut buf, seq, SimTime::from_nanos(seq), EventType::None, None);
        CapturedPacket {
            rx_time: SimTime::ZERO,
            orig_len: buf.len(),
            bytes: buf,
        }
    }

    fn counters(mirrored: u64, roce_rx: u64) -> SwitchCounters {
        SwitchCounters {
            mirrored_total: mirrored,
            roce_rx_total: roce_rx,
            ..Default::default()
        }
    }

    #[test]
    fn all_conditions_pass() {
        let caps = vec![vec![capture(0), capture(2)], vec![capture(1)]];
        let (trace, rep) = check(&caps, &counters(3, 3));
        assert!(rep.passed(), "{rep:?}");
        assert_eq!(trace.unwrap().len(), 3);
    }

    #[test]
    fn gap_fails_condition_one() {
        let caps = vec![vec![capture(0), capture(2)]];
        let (trace, rep) = check(&caps, &counters(3, 3));
        assert!(trace.is_none());
        assert!(!rep.passed());
        assert!(!rep.seq_consecutive);
        assert!(!rep.details.is_empty());
    }

    #[test]
    fn count_mismatch_fails_conditions_two_three() {
        let caps = vec![vec![capture(0), capture(1)]];
        let (trace, rep) = check(&caps, &counters(5, 4));
        assert!(trace.is_some(), "trace still returned for debugging");
        assert!(rep.seq_consecutive);
        assert!(!rep.mirrored_matches);
        assert!(!rep.roce_rx_matches);
        assert!(!rep.passed());
        assert_eq!(rep.details.len(), 2);
    }
}
