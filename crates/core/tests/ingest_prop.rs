//! Property tests for the ingestion pipeline's degrade-don't-die
//! contract (robustness PR, ingestion satellite): `ingest_reader` must
//! terminate without panicking on *anything* a hostile capture file can
//! contain — pure byte soup, truncated tails, bit-rotted records, lying
//! length fields. The grade on garbage is unspecified; producing one (or
//! a typed `Error::Ingest`) is the contract, and the frame-recovery
//! accounting must stay consistent whenever a grade comes back.

use lumina_core::{ingest_reader, IngestParams};
use lumina_packet::builder::DataPacketBuilder;
use lumina_packet::opcode::Opcode;
use lumina_sim::pcap::PcapWriter;
use lumina_sim::SimTime;
use proptest::prelude::*;
use std::io::Cursor;

fn params() -> IngestParams {
    IngestParams {
        // Tiny bounds so even small inputs exercise chunk sealing.
        chunk_entries: 8,
        max_resident_bytes: 2048,
        context: None,
        retain_trace: false,
        progress: false,
    }
}

/// A structurally valid single-NIC capture: `n` data packets in PSN
/// order, written through the real `PcapWriter`.
fn valid_pcap(n: u64, ipsn: u32) -> Vec<u8> {
    let mut out = Vec::new();
    let mut w = PcapWriter::new(&mut out, 256).unwrap();
    for i in 0..n {
        let frame = DataPacketBuilder::new()
            .opcode(Opcode::RdmaWriteMiddle)
            .dest_qp(0x22)
            .psn(ipsn.wrapping_add(i as u32) & 0xff_ffff)
            .payload_len(64)
            .build();
        let bytes = frame.emit();
        w.write_packet(SimTime::from_nanos(i * 1000), &bytes, bytes.len())
            .unwrap();
    }
    w.finish().unwrap();
    out
}

/// Grind one byte buffer through ingestion; panic-free is the property.
fn grind(bytes: &[u8]) {
    match ingest_reader(Cursor::new(bytes), "prop", &params()) {
        Ok(out) => {
            assert!(out.recovery.consistent(), "recovery ledger out of balance");
            assert_eq!(
                out.recovery.frames_seen, out.records,
                "every record must be classified"
            );
            if out.first_malformed.is_some() {
                assert!(!out.pristine());
            }
        }
        Err(e) => {
            // Unreadable header or nothing-degradable: a typed error
            // naming the offset, never a panic.
            let msg = e.to_string();
            assert!(msg.contains("offset"), "untyped ingest failure: {msg}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Pure noise: arbitrary bytes as a "capture file".
    #[test]
    fn byte_soup_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        grind(&bytes);
    }

    /// A valid capture cut off at every possible depth: the readable
    /// prefix must be graded, the cut reported, and nothing panics.
    #[test]
    fn truncation_at_any_offset_never_panics(
        n in 1u64..24,
        ipsn in 0u32..0xff_ffff,
        cut_frac in 0u64..10_000,
    ) {
        let full = valid_pcap(n, ipsn);
        let cut = (full.len() as u64 * cut_frac / 10_000) as usize;
        grind(&full[..cut]);
    }

    /// Bit rot anywhere in a valid capture — including the global header
    /// magic, per-record length words (lying lengths), and frame bytes.
    #[test]
    fn bit_rot_at_any_offset_never_panics(
        n in 1u64..24,
        ipsn in 0u32..0xff_ffff,
        rot_at in 0u64..10_000,
        rot_xor in 1u8..=255,
    ) {
        let mut bytes = valid_pcap(n, ipsn);
        let at = (bytes.len() as u64 * rot_at / 10_000) as usize;
        let at = at.min(bytes.len() - 1);
        bytes[at] ^= rot_xor;
        grind(&bytes);
    }

    /// Several rotten bytes at once, under the tight memory bound.
    #[test]
    fn multi_rot_never_panics(
        n in 1u64..24,
        ipsn in 0u32..0xff_ffff,
        rot_ats in prop::collection::vec(0u64..10_000, 1..8),
        rot_xor in 1u8..=255,
    ) {
        let mut bytes = valid_pcap(n, ipsn);
        for at in rot_ats {
            let at = (bytes.len() as u64 * at / 10_000) as usize;
            let at = at.min(bytes.len() - 1);
            bytes[at] ^= rot_xor;
        }
        grind(&bytes);
    }
}
