//! Property coverage for the fuzzer's mutation operators: whatever
//! traffic shape the campaign starts from, `initial()`/`mutate()` must
//! never panic, and every output either validates cleanly or is counted
//! in the campaign's `rejected` tally — never silently lost.

use lumina_core::config::TestConfig;
use lumina_core::fuzz::mutate::{EventMutator, Mutator};
use lumina_core::fuzz::{fuzz, FuzzParams};
use lumina_sim::SimRng;
use proptest::prelude::*;

fn base_cfg(mtu: u32, msg_size: u32, conns: u32, msgs: u32, verb: &str) -> TestConfig {
    TestConfig::from_yaml(&format!(
        r#"
traffic:
  num-connections: {conns}
  rdma-verb: {verb}
  num-msgs-per-qp: {msgs}
  mtu: {mtu}
  message-size: {msg_size}
"#
    ))
    .unwrap()
}

proptest! {
    /// Mutation chains over arbitrary valid bases never panic, and every
    /// produced configuration is either valid or detectably invalid (so
    /// the campaign rejects it) — `validate()` itself must not panic.
    #[test]
    fn mutate_output_valid_or_rejectable(
        mtu in prop::sample::select(vec![256u32, 512, 1024, 4096]),
        msg_size in prop::sample::select(vec![256u32, 1024, 4096, 10_240]),
        conns in 1u32..8,
        msgs in 1u32..4,
        verb in prop::sample::select(vec!["write", "read", "send"]),
        seed in 0u64..1_000,
    ) {
        let base = base_cfg(mtu, msg_size, conns, msgs, verb);
        prop_assert!(base.problems().is_empty(), "{:?}", base.problems());
        let mut m = EventMutator::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut cfg = m.initial(&base, &mut rng);
        let _ = cfg.validate(); // must not panic regardless of verdict
        for _ in 0..40 {
            cfg = m.mutate(&cfg, &mut rng);
            let problems = cfg.problems();
            // The EventMutator is designed to stay within the valid
            // space; if that ever regresses, the campaign still has to
            // classify the output, so validate() must give a verdict.
            prop_assert!(problems.is_empty(), "mutation left valid space: {problems:?}");
        }
    }

    /// The degenerate corner the issue calls out: mtu=256, one message,
    /// one connection. Single-packet flows mean psn ranges collapse to
    /// [1,1]; no mutation may panic there.
    #[test]
    fn edge_config_never_panics(seed in 0u64..2_000) {
        let base = base_cfg(256, 256, 1, 1, "write");
        let mut m = EventMutator::default();
        let mut rng = SimRng::seed_from_u64(seed);
        let mut cfg = m.initial(&base, &mut rng);
        for _ in 0..60 {
            cfg = m.mutate(&cfg, &mut rng);
            let _ = cfg.validate();
        }
    }

    /// Campaign-level conservation: every candidate the campaign draws is
    /// accounted for — scored into `history` or counted in `rejected`.
    #[test]
    fn campaign_accounts_for_every_candidate(seed in 0u64..50) {
        let base = base_cfg(1024, 4096, 2, 2, "write");
        let mut m = EventMutator::default();
        let params = FuzzParams {
            pool_size: 2,
            iterations: 5,
            batch_size: 2,
            workers: 0,
            seed,
            ..Default::default()
        };
        let out = fuzz(&base, &mut m, |_c, _r| (0.0, String::new()), &params);
        prop_assert_eq!(out.history.len() + out.rejected, params.iterations);
    }
}

#[test]
fn events_only_edge_config_never_panics() {
    let base = base_cfg(256, 256, 1, 1, "send");
    let mut m = EventMutator {
        events_only: true,
        ..Default::default()
    };
    let mut rng = SimRng::seed_from_u64(99);
    let mut cfg = m.initial(&base, &mut rng);
    for _ in 0..200 {
        cfg = m.mutate(&cfg, &mut rng);
        assert!(cfg.problems().is_empty(), "{:?}", cfg.problems());
    }
}
