//! The analyzers must have teeth: hand-built traces that *violate* the
//! Go-back-N specification must be flagged. (Compliance on healthy models
//! is covered elsewhere; these tests prove the FSM detects broken
//! implementations — the paper's actual purpose.)

use lumina_core::analyzers::gbn_fsm;
use lumina_core::translate::ConnMeta;
use lumina_dumper::trace::{Trace, TraceEntry};
use lumina_packet::aeth::{Aeth, AethSyndrome, NakCode};
use lumina_packet::bth::psn_add;
use lumina_packet::builder::{ack_frame, nack_frame, DataPacketBuilder};
use lumina_packet::frame::RoceFrame;
use lumina_packet::opcode::Opcode;
use lumina_rnic::qp::QpEndpoint;
use lumina_rnic::Verb;
use lumina_sim::SimTime;
use lumina_switch::events::EventType;
use std::net::Ipv4Addr;

const REQ_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const RSP_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const REQ_QPN: u32 = 0x11;
const RSP_QPN: u32 = 0x22;
const IPSN: u32 = 1000;

fn meta() -> ConnMeta {
    ConnMeta {
        index: 1,
        requester: QpEndpoint {
            ip: REQ_IP,
            qpn: REQ_QPN,
            ipsn: IPSN,
        },
        responder: QpEndpoint {
            ip: RSP_IP,
            qpn: RSP_QPN,
            ipsn: 5000,
        },
        verb: Verb::Write,
    }
}

struct TraceBuilder {
    entries: Vec<TraceEntry>,
    t: u64,
}

impl TraceBuilder {
    fn new() -> TraceBuilder {
        TraceBuilder {
            entries: Vec::new(),
            t: 0,
        }
    }

    fn push(&mut self, frame: RoceFrame, event: EventType) -> &mut Self {
        self.t += 1000;
        let seq = self.entries.len() as u64;
        self.entries.push(TraceEntry {
            seq,
            timestamp: SimTime::from_nanos(self.t),
            event,
            frame,
            orig_len: 1100,
        });
        self
    }

    /// Data packet with 1-based relative position `rel`.
    fn data(&mut self, rel: u32, event: EventType) -> &mut Self {
        let frame = DataPacketBuilder::new()
            .src_ip(REQ_IP)
            .dst_ip(RSP_IP)
            .opcode(Opcode::RdmaWriteMiddle)
            .dest_qp(RSP_QPN)
            .psn(psn_add(IPSN, rel - 1))
            .payload_len(0)
            .build();
        self.push(frame, event)
    }

    fn nack(&mut self, rel_expected: u32) -> &mut Self {
        let frame = nack_frame(RSP_IP, REQ_IP, REQ_QPN, psn_add(IPSN, rel_expected - 1), 0);
        self.push(frame, EventType::None)
    }

    fn ack(&mut self, rel: u32) -> &mut Self {
        let frame = ack_frame(
            RSP_IP,
            REQ_IP,
            REQ_QPN,
            psn_add(IPSN, rel - 1),
            AethSyndrome::Ack { credit: 31 },
            0,
        );
        self.push(frame, EventType::None)
    }

    fn build(&mut self) -> Trace {
        Trace {
            entries: std::mem::take(&mut self.entries),
        }
    }
}

fn analyze(trace: &Trace) -> gbn_fsm::ConnGbnReport {
    gbn_fsm::analyze(trace, &[meta()]).per_conn.remove(0)
}

#[test]
fn compliant_drop_recovery_accepted() {
    // 1 2 [3 dropped] 4 5, NACK(3), retransmit 3 4 5, ACK(5).
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::None)
        .data(3, EventType::Drop)
        .data(4, EventType::None)
        .data(5, EventType::None)
        .nack(3)
        .data(3, EventType::None)
        .data(4, EventType::None)
        .data(5, EventType::None)
        .ack(5);
    let rep = analyze(&b.build());
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    assert_eq!(rep.nacks, 1);
    assert_eq!(rep.ooo_episodes, 1);
    assert_eq!(rep.acks, 1);
}

#[test]
fn spurious_nack_flagged() {
    // A NACK with no out-of-sequence episode is a spec violation.
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None).data(2, EventType::None).nack(3);
    let rep = analyze(&b.build());
    // The PSN happens to match the receiver's expectation, so exactly one
    // violation: the missing episode.
    assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
    assert!(rep.violations[0].contains("without an out-of-sequence episode"));
}

#[test]
fn nack_with_wrong_psn_flagged() {
    // Receiver expects 3 (it was dropped) but the NACK claims 4.
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::None)
        .data(3, EventType::Drop)
        .data(4, EventType::None)
        .nack(4);
    let rep = analyze(&b.build());
    assert!(
        rep.violations.iter().any(|v| v.contains("expected")),
        "{:?}",
        rep.violations
    );
}

#[test]
fn duplicate_nack_within_episode_flagged() {
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::Drop)
        .data(3, EventType::None)
        .nack(2)
        .data(4, EventType::None) // still the same round, still OOO
        .nack(2); // second NACK without a new round: violation
    let rep = analyze(&b.build());
    assert!(
        rep.violations.iter().any(|v| v.contains("second NACK")),
        "{:?}",
        rep.violations
    );
}

#[test]
fn renack_after_dropped_retransmission_accepted() {
    // Drop 2, NACK, retransmission round drops 2 again → a SECOND NACK is
    // legitimate (new round).
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::Drop)
        .data(3, EventType::None)
        .nack(2)
        .data(2, EventType::Drop) // retransmission dropped again
        .data(3, EventType::None) // new round, still OOO
        .nack(2)
        .data(2, EventType::None)
        .data(3, EventType::None)
        .ack(3);
    let rep = analyze(&b.build());
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    assert_eq!(rep.nacks, 2);
    assert_eq!(rep.ooo_episodes, 2);
}

#[test]
fn selective_repeat_flagged_as_non_gbn() {
    // After NACK(2), a Go-back-N sender must resume at 2. Resuming at 4
    // (selective repeat of only the missing tail) is flagged.
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::Drop)
        .data(3, EventType::None)
        .data(4, EventType::None)
        .nack(2)
        .data(3, EventType::None); // round restarts at 3, not the NACKed 2
    let rep = analyze(&b.build());
    assert!(
        rep.violations
            .iter()
            .any(|v| v.contains("retransmission round started at")),
        "{:?}",
        rep.violations
    );
}

#[test]
fn ack_regression_flagged() {
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::None)
        .data(3, EventType::None)
        .ack(3)
        .ack(1); // ACK PSN went backwards
    let rep = analyze(&b.build());
    assert!(
        rep.violations.iter().any(|v| v.contains("regressed")),
        "{:?}",
        rep.violations
    );
}

#[test]
fn other_nak_codes_ignored_by_gbn_fsm() {
    // A remote-access-error NAK is not a sequence-error NACK; the GBN FSM
    // must not treat it as one.
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None);
    let frame = DataPacketBuilder::new()
        .src_ip(RSP_IP)
        .dst_ip(REQ_IP)
        .opcode(Opcode::Acknowledge)
        .dest_qp(REQ_QPN)
        .psn(IPSN)
        .aeth(Aeth {
            syndrome: AethSyndrome::Nak(NakCode::RemoteAccessError),
            msn: 0,
        })
        .build();
    b.push(frame, EventType::None);
    let rep = analyze(&b.build());
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    assert_eq!(rep.nacks, 0);
}

#[test]
fn corrupt_event_counts_as_not_delivered() {
    // A corrupted packet is dropped by the receiver on ICRC: the trace
    // must be interpreted with packet 2 missing.
    let mut b = TraceBuilder::new();
    b.data(1, EventType::None)
        .data(2, EventType::Corrupt)
        .data(3, EventType::None)
        .nack(2)
        .data(2, EventType::None)
        .data(3, EventType::None)
        .ack(3);
    let rep = analyze(&b.build());
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    assert_eq!(rep.nacks, 1);
    assert_eq!(rep.ooo_episodes, 1);
}
