//! Property tests for the panic-free guarantee (robustness PR,
//! satellite 2): the conformance oracle and every trace analyzer must
//! terminate without panicking on *anything* the capture path can hand
//! them — arbitrary bytes, bit-rotted frames, and `reconstruct_lossy`
//! outputs full of gaps and duplicates. The verdicts on garbage are
//! unspecified; surviving to produce one is the contract.

use lumina_core::analyzers::{cnp, conformance, gbn_fsm, retrans_perf, ConformanceOpts};
use lumina_core::translate::ConnMeta;
use lumina_dumper::{reconstruct_lossy, CapturedPacket};
use lumina_packet::aeth::{Aeth, AethSyndrome};
use lumina_packet::builder::DataPacketBuilder;
use lumina_packet::opcode::Opcode;
use lumina_packet::reth::Reth;
use lumina_rnic::qp::QpEndpoint;
use lumina_rnic::Verb;
use lumina_sim::SimTime;
use lumina_switch::events::EventType;
use lumina_switch::mirror;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A connection roster matching the builder defaults (10.0.0.1 → 10.0.0.2)
/// plus one that matches nothing, so both the hit and miss paths run.
fn synthetic_conns() -> Vec<ConnMeta> {
    let req_ip = Ipv4Addr::new(10, 0, 0, 1);
    let rsp_ip = Ipv4Addr::new(10, 0, 0, 2);
    vec![
        ConnMeta {
            index: 1,
            requester: QpEndpoint {
                ip: req_ip,
                qpn: 0x11,
                ipsn: 0,
            },
            responder: QpEndpoint {
                ip: rsp_ip,
                qpn: 0x22,
                ipsn: 1000,
            },
            verb: Verb::Write,
        },
        ConnMeta {
            index: 2,
            requester: QpEndpoint {
                ip: req_ip,
                qpn: 0x33,
                ipsn: 500,
            },
            responder: QpEndpoint {
                ip: rsp_ip,
                qpn: 0x44,
                ipsn: 2000,
            },
            verb: Verb::Read,
        },
        ConnMeta {
            index: 3,
            requester: QpEndpoint {
                ip: Ipv4Addr::new(172, 16, 9, 9),
                qpn: 0x55,
                ipsn: 0,
            },
            responder: QpEndpoint {
                ip: Ipv4Addr::new(172, 16, 9, 10),
                qpn: 0x66,
                ipsn: 0,
            },
            verb: Verb::Send,
        },
    ]
}

/// Run every trace analyzer over the trace; the assertion is simply that
/// none of them panic and the oracle's report stays within its bounds.
fn grind_analyzers(trace: &lumina_dumper::Trace, degraded: bool) {
    let conns = synthetic_conns();
    for (np, icrc) in [(false, 0u64), (true, 3)] {
        let opts = ConformanceOpts {
            np_enabled_requester: np,
            np_enabled_responder: np,
            mtu: 1024,
            rx_icrc_errors: icrc,
            degraded,
            external_loss: false,
        };
        let rep = conformance::analyze(trace, &conns, &opts);
        assert!(rep.violations.len() <= 64, "violation cap breached");
        assert!(rep.checked_conns as usize <= conns.len());
        if degraded {
            assert!(rep.partial, "degraded input must yield a partial report");
        }
    }
    let _ = gbn_fsm::analyze(trace, &conns);
    let _ = cnp::analyze(trace);
    let _ = retrans_perf::analyze(trace, &conns);
}

/// One plausibly-shaped frame of the given flavor, mirror-embedded.
fn valid_capture(seq: u64, flavor: u8, psn: u32) -> CapturedPacket {
    let req_ip = Ipv4Addr::new(10, 0, 0, 1);
    let rsp_ip = Ipv4Addr::new(10, 0, 0, 2);
    let b = DataPacketBuilder::new();
    let frame = match flavor % 8 {
        0 => b
            .opcode(Opcode::RdmaWriteFirst)
            .dest_qp(0x22)
            .psn(psn)
            .reth(Reth {
                vaddr: 0x1000,
                rkey: 7,
                dma_len: 4096,
            })
            .payload_len(1024)
            .build(),
        1 => b
            .opcode(Opcode::RdmaWriteMiddle)
            .dest_qp(0x22)
            .psn(psn)
            .payload_len(1024)
            .build(),
        2 => b
            .opcode(Opcode::RdmaWriteLast)
            .dest_qp(0x22)
            .psn(psn)
            .ack_req(true)
            .payload_len(512)
            .build(),
        3 => b
            .src_ip(rsp_ip)
            .dst_ip(req_ip)
            .opcode(Opcode::Acknowledge)
            .dest_qp(0x11)
            .psn(psn)
            .aeth(Aeth {
                syndrome: AethSyndrome::Ack { credit: 31 },
                msn: psn & 0xff_ffff,
            })
            .build(),
        4 => b
            .opcode(Opcode::RdmaReadRequest)
            .dest_qp(0x44)
            .psn(psn)
            .reth(Reth {
                vaddr: 0x2000,
                rkey: 9,
                dma_len: 8192,
            })
            .build(),
        5 => b
            .src_ip(rsp_ip)
            .dst_ip(req_ip)
            .opcode(Opcode::RdmaReadResponseLast)
            .dest_qp(0x33)
            .psn(psn)
            .aeth(Aeth {
                syndrome: AethSyndrome::Ack { credit: 31 },
                msn: psn & 0xff_ffff,
            })
            .payload_len(1024)
            .build(),
        6 => b
            .src_ip(rsp_ip)
            .dst_ip(req_ip)
            .opcode(Opcode::Acknowledge)
            .dest_qp(0x11)
            .psn(psn)
            .aeth(Aeth {
                syndrome: AethSyndrome::Nak(lumina_packet::aeth::NakCode::PsnSequenceError),
                msn: psn & 0xff_ffff,
            })
            .build(),
        _ => lumina_packet::builder::cnp_frame(rsp_ip, req_ip, 0x11),
    };
    let mut buf = frame.emit().to_vec();
    mirror::embed(
        &mut buf,
        seq,
        SimTime::from_nanos(seq * 777),
        EventType::None,
        Some((seq % 65_536) as u16),
    );
    mirror::restore_dport(&mut buf);
    let orig_len = buf.len();
    buf.truncate(128);
    CapturedPacket {
        rx_time: SimTime::ZERO,
        orig_len,
        bytes: buf,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Pure noise: arbitrary byte soup as "captures". The reconstructor
    /// must absorb it (counting bad captures) and whatever survives must
    /// not panic any analyzer.
    #[test]
    fn arbitrary_bytes_never_panic_the_oracle(
        bufs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..20),
    ) {
        let caps: Vec<CapturedPacket> = bufs
            .into_iter()
            .map(|bytes| CapturedPacket {
                rx_time: SimTime::ZERO,
                orig_len: bytes.len(),
                bytes,
            })
            .collect();
        let lossy = reconstruct_lossy(&[caps]);
        grind_analyzers(&lossy.trace, true);
        grind_analyzers(&lossy.trace, false);
    }

    /// Valid frames, then bit-rot: flip one byte at an arbitrary offset in
    /// an arbitrary subset. Headers may now lie about lengths, opcodes may
    /// promise extension headers that are absent — no panic allowed.
    #[test]
    fn bit_rotted_frames_never_panic_the_oracle(
        n in 1usize..40,
        rot_mask in 0u64..u64::MAX,
        rot_offset in 0usize..128,
        rot_xor in 1u8..=255,
    ) {
        let mut caps: Vec<CapturedPacket> = (0..n as u64)
            .map(|s| valid_capture(s, (s % 8) as u8, (s as u32) & 0xff_ffff))
            .collect();
        for (i, c) in caps.iter_mut().enumerate() {
            if rot_mask >> (i % 64) & 1 == 1 {
                let off = rot_offset % c.bytes.len().max(1);
                if let Some(b) = c.bytes.get_mut(off) {
                    *b ^= rot_xor;
                }
            }
        }
        let lossy = reconstruct_lossy(&[caps]);
        grind_analyzers(&lossy.trace, false);
    }

    /// Gaps and duplicates: drop an arbitrary subset and re-capture an
    /// arbitrary subset. The lossy trace then has holes exactly where the
    /// analyzers' sequence assumptions are weakest.
    #[test]
    fn gapped_and_duplicated_streams_never_panic_the_oracle(
        n in 2usize..60,
        drop_mask in 0u64..u64::MAX,
        dup_mask in 0u64..u64::MAX,
    ) {
        let mut caps: Vec<CapturedPacket> = Vec::new();
        for s in 0..n as u64 {
            if drop_mask >> (s % 64) & 1 == 1 {
                continue;
            }
            let c = valid_capture(s, (s % 8) as u8, (s as u32) & 0xff_ffff);
            if dup_mask >> (s % 64) & 1 == 1 {
                caps.push(c.clone());
            }
            caps.push(c);
        }
        let lossy = reconstruct_lossy(&[caps]);
        prop_assert!(lossy.trace.len() <= n);
        grind_analyzers(&lossy.trace, false);
        grind_analyzers(&lossy.trace, true);
    }

    /// Truncated captures: cut valid frames at arbitrary points so parsing
    /// fails mid-header. Everything that still parses is analyzed; nothing
    /// panics.
    #[test]
    fn truncated_captures_never_panic_the_oracle(
        n in 1usize..30,
        cut in 0usize..140,
        cut_mask in 0u64..u64::MAX,
    ) {
        let mut caps: Vec<CapturedPacket> = (0..n as u64)
            .map(|s| valid_capture(s, (s % 8) as u8, (s as u32) & 0xff_ffff))
            .collect();
        for (i, c) in caps.iter_mut().enumerate() {
            if cut_mask >> (i % 64) & 1 == 1 {
                c.bytes.truncate(cut);
            }
        }
        let lossy = reconstruct_lossy(&[caps]);
        grind_analyzers(&lossy.trace, false);
    }
}
