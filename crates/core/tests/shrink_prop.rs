//! Property tests for the reproducer shrinker (coverage-guided fuzzing
//! PR, satellite 2): over randomized finding configurations, shrinking
//! must (a) never panic, (b) always return a *valid* configuration, and
//! (c) when it claims the finding reproduces, the shrunk config must
//! re-trigger the original violation class on an independent re-run.
//! The properties hold regardless of which knobs fire, how much event
//! debris the config carries, or how tight the run budget is.

use lumina_core::analyzers::ViolationClass;
use lumina_core::config::{EventSpec, QuirksSection, TestConfig};
use lumina_core::fuzz::coverage::violation_classes;
use lumina_core::fuzz::shrink::{shrink_violation, ShrinkParams};
use proptest::prelude::*;

/// A base config sized so a run is fast but every shrink dimension has
/// something to chew on: spare connections, spare messages, debris events.
fn base(num_connections: u32, num_msgs: u32) -> TestConfig {
    let mut cfg = TestConfig::from_yaml(
        r#"
requester: { nic-type: cx5 }
responder: { nic-type: cx5 }
traffic:
  num-connections: 1
  rdma-verb: read
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 4096
"#,
    )
    .unwrap();
    cfg.traffic.num_connections = num_connections;
    cfg.traffic.num_msgs_per_qp = num_msgs;
    cfg
}

/// The quirk knob under test: (section, class it proves on a read
/// workload). Ghost retransmits and stale MSNs both fire deterministically
/// at prob 1.0, so the "reproduces" leg of the property is non-vacuous.
fn firing_quirks(which: usize) -> (QuirksSection, ViolationClass) {
    match which % 2 {
        0 => (
            QuirksSection {
                ghost_retransmit_prob: 1.0,
                ..Default::default()
            },
            ViolationClass::SpuriousRetransmit,
        ),
        _ => (
            QuirksSection {
                stale_msn_prob: 1.0,
                ..Default::default()
            },
            ViolationClass::MsnRegression,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// The full contract in one property: no panic, valid output, and a
    /// truthful `reproduces` flag backed by an actual re-run.
    #[test]
    fn shrinking_is_panic_free_valid_and_truthful(
        num_connections in 1u32..4,
        num_msgs in 1u32..4,
        which_quirk in 0usize..2,
        debris_knob in 0usize..2,
        debris_events in prop::collection::vec(0u32..15, 0..3),
        max_runs in 0usize..24,
    ) {
        let (quirks, class) = firing_quirks(which_quirk);
        let mut cfg = base(num_connections, num_msgs);
        let mut q = quirks;
        if debris_knob == 1 {
            // An irrelevant knob the shrinker should be able to clear.
            q.cnp_spurious_prob = 0.02;
        }
        cfg.quirks = Some(q);
        for enc in debris_events {
            // One draw encodes (qpn, psn): the shim has no tuple strategy.
            let (qpn, psn) = (enc % 3 + 1, enc / 3 + 1);
            cfg.traffic.data_pkt_events.push(EventSpec {
                qpn: qpn.min(cfg.traffic.num_connections),
                psn,
                r#type: "ecn".into(),
                iter: 1,
                every: 0,
                delay_us: 0,
                reorder_by: 0,
            });
        }
        prop_assert!(cfg.validate().is_ok(), "precondition: base must be valid");

        let out = shrink_violation(
            &cfg,
            class,
            &ShrinkParams { max_runs, max_passes: 2 },
        );

        // (a) reaching here is the no-panic half; (b) output always valid.
        prop_assert!(out.cfg.validate().is_ok(), "{:?}", out.cfg.problems());
        prop_assert!(out.runs_used <= max_runs.max(1));

        if out.reproduces {
            // (c) the shrunk config must re-trigger the class when re-run.
            let res = lumina_core::orchestrator::run_test(&out.cfg).unwrap();
            prop_assert!(
                violation_classes(&res).contains(&class),
                "shrunk config lost {class:?}"
            );
        } else {
            // Not reproducing (e.g. zero budget) must mean "untouched".
            prop_assert_eq!(out.cfg.to_yaml(), cfg.to_yaml());
            prop_assert_eq!(out.removed(), 0);
        }
    }

    /// Shrinking a class the config can never prove is a bounded no-op:
    /// one verification run, original returned untouched.
    #[test]
    fn impossible_targets_cost_one_run(
        num_connections in 1u32..3,
        which_quirk in 0usize..2,
    ) {
        let (quirks, _) = firing_quirks(which_quirk);
        let mut cfg = base(num_connections, 1);
        cfg.quirks = Some(quirks);
        let out = shrink_violation(
            &cfg,
            ViolationClass::IcrcMiscompute, // never fires here
            &ShrinkParams::default(),
        );
        prop_assert!(!out.reproduces);
        prop_assert_eq!(out.runs_used, 1);
        prop_assert_eq!(out.cfg.to_yaml(), cfg.to_yaml());
    }
}
