//! Criterion benchmarks: one group per table/figure of the paper.
//!
//! Each benchmark times the *reproduction harness* for that experiment
//! (scaled-down parameters where the full figure would take seconds per
//! iteration) — i.e. how fast the simulated Lumina testbed regenerates the
//! paper's result. Run with `cargo bench -p lumina-bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fig03_iter(c: &mut Criterion) {
    c.bench_function("fig03_iter_tracking", |b| {
        b.iter(|| black_box(lumina_bench::fig03_iter::run()))
    });
}

fn bench_fig07_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_overhead");
    g.sample_size(10);
    g.bench_function("lumina_100kb_20msgs", |b| {
        b.iter(|| black_box(lumina_bench::fig07_overhead::measure("lumina", 100, 20)))
    });
    g.bench_function("l2fwd_100kb_20msgs", |b| {
        b.iter(|| black_box(lumina_bench::fig07_overhead::measure("l2-forward", 100, 20)))
    });
    g.finish();
}

fn bench_fig08_09_retrans(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_09_retrans");
    g.sample_size(10);
    for nic in ["cx4", "cx5", "cx6", "e810"] {
        g.bench_function(format!("write_drop_{nic}"), |b| {
            b.iter(|| black_box(lumina_bench::fig08_09_retrans::measure(nic, "write", 40)))
        });
    }
    g.bench_function("read_drop_e810_slowpath", |b| {
        b.iter(|| black_box(lumina_bench::fig08_09_retrans::measure("e810", "read", 40)))
    });
    g.finish();
}

fn bench_fig10_ets(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_ets");
    g.sample_size(10);
    for setting in lumina_bench::fig10_ets::SETTINGS {
        g.bench_function(setting, |b| {
            b.iter(|| black_box(lumina_bench::fig10_ets::measure("cx6", setting, 2)))
        });
    }
    g.finish();
}

fn bench_fig11_noisy(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_noisy_neighbor");
    g.sample_size(10);
    g.bench_function("innocent_i8", |b| {
        b.iter(|| black_box(lumina_bench::fig11_noisy::measure("cx4", 8, 24, 2)))
    });
    g.bench_function("collapse_i12", |b| {
        b.iter(|| black_box(lumina_bench::fig11_noisy::measure("cx4", 12, 24, 2)))
    });
    g.finish();
}

fn bench_interop(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec623_interop");
    g.sample_size(10);
    g.bench_function("e810_to_cx5_16qp", |b| {
        b.iter(|| black_box(lumina_bench::interop::measure("e810-to-cx5", 16)))
    });
    g.bench_function("migfix_16qp", |b| {
        b.iter(|| black_box(lumina_bench::interop::measure("e810-to-cx5-migfix", 16)))
    });
    g.finish();
}

fn bench_cnp(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec63_cnp");
    g.sample_size(10);
    g.bench_function("interval_e810", |b| {
        b.iter(|| black_box(lumina_bench::cnp_behavior::measure_interval("e810", 0)))
    });
    g.bench_function("mode_inference_cx4", |b| {
        b.iter(|| black_box(lumina_bench::cnp_behavior::infer_mode("cx4")))
    });
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec63_adaptive_retrans");
    g.sample_size(10);
    g.bench_function("timeout_sequence_cx6", |b| {
        b.iter(|| {
            black_box(lumina_bench::adaptive_retrans::timeout_sequence(
                "cx6", true, 3,
            ))
        })
    });
    g.finish();
}

fn bench_sec34_dumper(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec34_dumper_lb");
    g.sample_size(10);
    g.bench_function("wrr_pool", |b| {
        b.iter(|| black_box(lumina_bench::sec34_dumper::measure("wrr-pool")))
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_detection");
    g.sample_size(10);
    // The cheapest single probe, representative of the suite's per-probe
    // cost; the full table is exercised by the integration tests.
    g.bench_function("counter_bug_probe_e810", |b| {
        b.iter(|| {
            let cfg = lumina_core::config::TestConfig::from_yaml(
                r#"
requester: { nic-type: e810, dcqcn-rp-enable: true }
responder: { nic-type: e810, dcqcn-np-enable: true }
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 20480
  data-pkt-events:
    - {qpn: 1, psn: 1, type: ecn, iter: 1, every: 2}
"#,
            )
            .unwrap();
            let res = lumina_core::orchestrator::run_test(&cfg).unwrap();
            black_box(lumina_core::analyzers::counter::analyze(&res))
        })
    });
    g.finish();
}

fn bench_sec5_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec5_switch");
    g.sample_size(10);
    g.bench_function("capacity_and_pressure", |b| {
        b.iter(|| black_box(lumina_bench::sec5_switch::run()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig03_iter,
    bench_fig07_overhead,
    bench_fig08_09_retrans,
    bench_fig10_ets,
    bench_fig11_noisy,
    bench_interop,
    bench_cnp,
    bench_adaptive,
    bench_sec34_dumper,
    bench_table2,
    bench_sec5_switch,
);
criterion_main!(figures);
