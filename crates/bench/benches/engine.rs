//! Criterion microbenchmarks of the substrates: packet codec, ICRC,
//! event-injector pipeline, and end-to-end simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lumina_packet::builder::DataPacketBuilder;
use lumina_packet::frame::{icrc_check, RoceFrame};
use lumina_packet::opcode::Opcode;
use lumina_packet::Frame;
use std::hint::black_box;

fn sample_frame_bytes(payload: usize) -> Frame {
    DataPacketBuilder::new()
        .opcode(Opcode::RdmaWriteMiddle)
        .psn(1234)
        .dest_qp(0xea)
        .payload_len(payload)
        .build()
        .emit()
}

fn bench_codec(c: &mut Criterion) {
    let wire = sample_frame_bytes(1024);
    let mut g = c.benchmark_group("packet_codec");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("parse_1024B", |b| {
        b.iter(|| black_box(RoceFrame::parse(&wire).unwrap()))
    });
    let parsed = RoceFrame::parse(&wire).unwrap();
    g.bench_function("emit_1024B", |b| b.iter(|| black_box(parsed.emit())));
    g.bench_function("icrc_check_1024B", |b| {
        b.iter(|| black_box(icrc_check(&wire)))
    });
    g.bench_function("parse_headers_trimmed", |b| {
        b.iter(|| black_box(RoceFrame::parse_headers(&wire[..128]).unwrap()))
    });
    g.finish();
}

fn bench_crc(c: &mut Criterion) {
    let data = vec![0xa5u8; 4096];
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("crc32_4k", |b| {
        b.iter(|| black_box(lumina_packet::icrc::crc32(&data)))
    });
    g.finish();
}

fn bench_injector(c: &mut Criterion) {
    use lumina_switch::iter::{ConnKey, IterTracker};
    use lumina_switch::table::{InjectionKey, InjectionTable};
    let key = ConnKey {
        src_ip: std::net::Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: std::net::Ipv4Addr::new(10, 0, 0, 2),
        dst_qpn: 0xea,
    };
    let mut g = c.benchmark_group("injector");
    g.bench_function("iter_observe", |b| {
        let mut t = IterTracker::default();
        let mut psn = 0u32;
        b.iter(|| {
            psn = (psn + 1) & 0xff_ffff;
            black_box(t.observe(key, psn))
        })
    });
    g.bench_function("table_lookup_miss", |b| {
        let mut t = InjectionTable::default();
        for i in 0..10_000 {
            t.insert(
                InjectionKey {
                    conn: key,
                    psn: i,
                    iter: 1,
                },
                lumina_switch::events::EventAction::Drop,
            );
        }
        b.iter(|| {
            black_box(t.lookup(&InjectionKey {
                conn: key,
                psn: 0xfff_fff,
                iter: 1,
            }))
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    // Simulated-seconds-per-wall-second: a full orchestrated run moving
    // ~4 MB through the testbed.
    let mut g = c.benchmark_group("end_to_end_sim");
    g.sample_size(10);
    g.bench_function("orchestrated_4MB_write", |b| {
        let cfg = lumina_core::config::TestConfig::from_yaml(
            r#"
requester: { nic-type: cx5 }
responder: { nic-type: cx5 }
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 1048576
  tx-depth: 2
"#,
        )
        .unwrap();
        b.iter(|| black_box(lumina_core::orchestrator::run_test(&cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(engine, bench_codec, bench_crc, bench_injector, bench_end_to_end);
criterion_main!(engine);
