//! §6.3: CNP generation intervals and rate-limiting modes.
//!
//! Two experiments:
//!
//! 1. **Interval** — mark every data packet toward each NIC with CE and
//!    measure the spacing of the CNPs it emits, with the coalescing knob
//!    configured to zero. NVIDIA NICs honor the configuration; the Intel
//!    E810 reveals a hidden ~50 µs floor.
//! 2. **Mode inference** — run two marking scenarios (4 QPs sharing one
//!    IP pair; 4 QPs with distinct IPs) and compare the merged CNP spacing
//!    per port / per destination IP / per QP. The pattern identifies the
//!    limiter granularity: per-destination-IP on CX4 Lx, per-QP on E810,
//!    per-port on CX5 and CX6 Dx.

use crate::common::{run_yaml, NICS};
use lumina_core::analyzers::cnp::{self, CnpReport};
use lumina_rnic::{CnpLimitMode, DeviceProfile};
use lumina_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Interval measurement for one NIC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IntervalPoint {
    /// NIC name.
    pub nic: String,
    /// Configured `min_time_between_cnps`, µs.
    pub configured_us: u64,
    /// Measured minimum CNP interval, µs.
    pub measured_min_us: f64,
    /// CNPs observed.
    pub cnps: usize,
    /// CE-marked packets observed.
    pub ce_marked: usize,
}

/// Result of the mode-inference experiment for one NIC.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModePoint {
    /// NIC name.
    pub nic: String,
    /// Inferred rate-limiting mode.
    pub inferred: String,
    /// Mode the device profile actually implements (ground truth).
    pub actual: String,
}

/// Whole experiment output.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Experiment {
    /// Interval sweep, one row per (nic, configured interval).
    pub intervals: Vec<IntervalPoint>,
    /// Mode inference, one row per NIC.
    pub modes: Vec<ModePoint>,
}

fn run_marked(nic: &str, configured_us: u64, conns: u32, multi_gid: bool) -> CnpReport {
    let yaml = format!(
        r#"
requester:
  nic-type: {nic}
  dcqcn-rp-enable: true
responder:
  nic-type: {nic}
  dcqcn-np-enable: true
  min-time-between-cnps-us: {configured_us}
traffic:
  num-connections: {conns}
  rdma-verb: write
  num-msgs-per-qp: 10
  mtu: 1024
  message-size: 102400
  multi-gid: {multi_gid}
  tx-depth: 2
  data-pkt-events:
    - {{qpn: 1, psn: 1, type: ecn, iter: 1, every: 1}}{extra}
"#,
        extra = (2..=conns)
            .map(|q| format!(
                "\n    - {{qpn: {q}, psn: 1, type: ecn, iter: 1, every: 1}}"
            ))
            .collect::<String>(),
    );
    let res = run_yaml(&yaml);
    assert!(res.integrity.passed(), "{nic}: integrity failed");
    cnp::analyze(res.trace.as_ref().unwrap())
}

/// Measure the CNP interval of one NIC at a configured coalescing value.
pub fn measure_interval(nic: &str, configured_us: u64) -> IntervalPoint {
    let rep = run_marked(nic, configured_us, 1, false);
    let min = rep
        .min_interval_global()
        .unwrap_or(SimTime::ZERO)
        .as_micros_f64();
    IntervalPoint {
        nic: nic.into(),
        configured_us,
        measured_min_us: min,
        cnps: rep.total_cnps,
        ce_marked: rep.total_ce_marked,
    }
}

/// Infer the rate-limiting mode of one NIC from two scenarios.
pub fn infer_mode(nic: &str) -> ModePoint {
    // Use a configured interval large enough to be unmistakable.
    let configured = 20u64;
    let threshold = SimTime::from_micros(configured / 2);
    // Scenario A: 4 QPs sharing one IP pair.
    let a = run_marked(nic, configured, 4, false);
    // Scenario B: 4 QPs with distinct IP pairs (multi-GID).
    let b = run_marked(nic, configured, 4, true);
    let a_global = a.min_interval_global().unwrap_or(SimTime::MAX);
    let b_global = b.min_interval_global().unwrap_or(SimTime::MAX);
    let inferred = if a_global < threshold {
        // Different QPs to the same destination IP emit CNPs closer than
        // the limiter interval → the limiter is per QP.
        CnpLimitMode::PerQp
    } else if b_global < threshold {
        // Per-IP separation unthrottles flows, but same-IP flows share a
        // limiter → per destination IP.
        CnpLimitMode::PerDestinationIp
    } else {
        CnpLimitMode::PerPort
    };
    let actual = DeviceProfile::by_name(nic).unwrap().cnp_mode;
    ModePoint {
        nic: nic.into(),
        inferred: format!("{inferred:?}"),
        actual: format!("{actual:?}"),
    }
}

/// Run the full §6.3 CNP experiment.
pub fn run() -> Experiment {
    let mut exp = Experiment::default();
    for nic in NICS {
        for configured in [0u64, 4] {
            exp.intervals.push(measure_interval(nic, configured));
        }
        exp.modes.push(infer_mode(nic));
    }
    exp
}

/// Print it.
pub fn print(exp: &Experiment) {
    println!("\n§6.3: CNP generation interval (every packet CE-marked)");
    let rows: Vec<Vec<String>> = exp
        .intervals
        .iter()
        .map(|p| {
            vec![
                p.nic.to_uppercase(),
                p.configured_us.to_string(),
                format!("{:.1}", p.measured_min_us),
                p.cnps.to_string(),
                p.ce_marked.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(
            &["nic", "configured (us)", "measured min (us)", "CNPs", "CE marks"],
            &rows
        )
    );
    println!("\n§6.3: CNP rate-limiting mode inference");
    let rows: Vec<Vec<String>> = exp
        .modes
        .iter()
        .map(|p| {
            vec![
                p.nic.to_uppercase(),
                p.inferred.clone(),
                p.actual.clone(),
                if p.inferred == p.actual { "yes" } else { "NO" }.into(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(&["nic", "inferred", "actual", "match"], &rows)
    );
}
