//! Figures 8 & 9: NACK generation and reaction latency versus the sequence
//! number of the dropped packet, for Write and Read traffic across the
//! four RNICs.
//!
//! Paper setup (§6.1): 100 KB messages over a single connection; drop the
//! packet at a given relative PSN; split the recovery into NACK generation
//! (receiver) and NACK reaction (sender) at the switch, correcting for the
//! half-RTT embedded in switch-side timestamps.

use crate::common::{run_yaml, NICS};
use lumina_core::analyzers::retrans_perf;
use lumina_sim::SimTime;
use serde::{Deserialize, Serialize};

/// The sweep of dropped sequence numbers used in the paper's figures.
pub const SEQNUMS: [u32; 6] = [1, 20, 40, 60, 80, 99];

/// One measured point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// NIC name.
    pub nic: String,
    /// `write` or `read`.
    pub verb: String,
    /// Sequence number of the dropped packet (1-based).
    pub seqnum: u32,
    /// NACK generation latency, µs (half-RTT-corrected).
    pub nack_gen_us: f64,
    /// NACK reaction latency, µs (half-RTT-corrected).
    pub nack_react_us: f64,
}

/// The full figure: all NICs × both verbs × all sequence numbers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Figure {
    /// Measured points.
    pub points: Vec<Point>,
}

impl Figure {
    /// Points of one (nic, verb) series, ordered by seqnum.
    pub fn series(&self, nic: &str, verb: &str) -> Vec<&Point> {
        let mut v: Vec<&Point> = self
            .points
            .iter()
            .filter(|p| p.nic == nic && p.verb == verb)
            .collect();
        v.sort_by_key(|p| p.seqnum);
        v
    }

    /// Mean generation latency of a series, µs.
    pub fn mean_gen(&self, nic: &str, verb: &str) -> f64 {
        let s = self.series(nic, verb);
        s.iter().map(|p| p.nack_gen_us).sum::<f64>() / s.len().max(1) as f64
    }

    /// Mean reaction latency of a series, µs.
    pub fn mean_react(&self, nic: &str, verb: &str) -> f64 {
        let s = self.series(nic, verb);
        s.iter().map(|p| p.nack_react_us).sum::<f64>() / s.len().max(1) as f64
    }
}

/// Measure one point.
pub fn measure(nic: &str, verb: &str, seqnum: u32) -> Point {
    let yaml = format!(
        r#"
requester: {{ nic-type: {nic} }}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: 1
  rdma-verb: {verb}
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 102400
  data-pkt-events:
    - {{qpn: 1, psn: {seqnum}, type: drop, iter: 1}}
"#
    );
    let res = run_yaml(&yaml);
    assert!(res.integrity.passed(), "integrity failed for {nic}/{verb}");
    assert!(res.traffic_completed(), "{nic}/{verb} did not complete");
    let breakdowns = retrans_perf::analyze(res.trace.as_ref().unwrap(), &res.conns);
    assert_eq!(breakdowns.len(), 1, "{nic}/{verb}/{seqnum}");
    let b = &breakdowns[0];
    // Base RTT of the simulated testbed: two links of propagation delay
    // each way plus the switch pipeline, pre-measured as the paper
    // suggests (§4).
    let rtt = SimTime::from_nanos(2 * (2 * res.cfg.network.propagation_delay_ns + 380));
    let gen = b
        .nack_gen_corrected(rtt)
        .unwrap_or_else(|| panic!("{nic}/{verb}/{seqnum}: no fast retransmission observed"));
    let react = b.nack_react_corrected(rtt).unwrap();
    Point {
        nic: nic.into(),
        verb: verb.into(),
        seqnum,
        nack_gen_us: gen.as_micros_f64(),
        nack_react_us: react.as_micros_f64(),
    }
}

/// Run the full sweep.
pub fn run() -> Figure {
    let mut fig = Figure::default();
    for nic in NICS {
        for verb in ["write", "read"] {
            for seq in SEQNUMS {
                fig.points.push(measure(nic, verb, seq));
            }
        }
    }
    fig
}

/// Print both figures the way the paper plots them.
pub fn print(fig: &Figure) {
    for (title, field) in [
        ("Figure 8: NACK generation latency (us)", true),
        ("Figure 9: NACK reaction latency (us)", false),
    ] {
        for verb in ["write", "read"] {
            println!("\n{title} — {verb} traffic");
            let mut rows = Vec::new();
            for nic in NICS {
                let mut row = vec![nic.to_uppercase()];
                for p in fig.series(nic, verb) {
                    let v = if field { p.nack_gen_us } else { p.nack_react_us };
                    row.push(format!("{v:.1}"));
                }
                rows.push(row);
            }
            let mut headers = vec!["nic"];
            let seq_strs: Vec<String> = SEQNUMS.iter().map(|s| format!("psn{s}")).collect();
            headers.extend(seq_strs.iter().map(|s| s.as_str()));
            print!("{}", crate::common::render_table(&headers, &rows));
        }
    }
}
