//! Figure 10: ETS work conservation on CX6 Dx (§6.2.1).
//!
//! Two QPs, 20 × 1 MB Writes each, DCQCN enabled. Three settings:
//!
//! 1. **Multi-queue vanilla** — two ETS queues, 50 % weight each, no ECN:
//!    both QPs get ≈ half the line rate.
//! 2. **Multi-queue with ECN** — mark one of every 50 packets of QP0:
//!    DCQCN slows QP0; a *work-conserving* ETS would let QP1 absorb the
//!    spare bandwidth, but the CX6 Dx pins QP1 at its 50 % guarantee.
//! 3. **Single queue with ECN** — both QPs in one queue: QP1 does absorb
//!    the spare bandwidth, proving the bandwidth is there to take.
//!
//! The module also runs an ablation on a work-conserving NIC (CX5 model)
//! where setting 2 behaves correctly.

use crate::common::run_yaml;
use serde::{Deserialize, Serialize};

/// The three paper settings.
pub const SETTINGS: [&str; 3] = ["multi-queue-vanilla", "multi-queue-ecn", "single-queue-ecn"];

/// Goodput of both QPs under one setting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bars {
    /// Setting name.
    pub setting: String,
    /// NIC under test.
    pub nic: String,
    /// QP0 goodput, Gbps.
    pub qp0_gbps: f64,
    /// QP1 goodput, Gbps.
    pub qp1_gbps: f64,
}

/// The figure: three settings on the NIC under test.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Figure {
    /// One entry per setting.
    pub bars: Vec<Bars>,
}

impl Figure {
    /// Bars of one setting.
    pub fn get(&self, setting: &str) -> &Bars {
        self.bars
            .iter()
            .find(|b| b.setting == setting)
            .unwrap_or_else(|| panic!("no bars for {setting}"))
    }
}

/// Run one setting on one NIC model.
pub fn measure(nic: &str, setting: &str, msgs_per_qp: u32) -> Bars {
    let (ets, classes, ecn_event) = match setting {
        "multi-queue-vanilla" => (
            "ets:\n  queues: [{weight: 50}, {weight: 50}]",
            "[0, 1]",
            "",
        ),
        "multi-queue-ecn" => (
            "ets:\n  queues: [{weight: 50}, {weight: 50}]",
            "[0, 1]",
            "\n    - {qpn: 1, psn: 50, type: ecn, iter: 1, every: 50}",
        ),
        "single-queue-ecn" => (
            "ets:\n  queues: [{weight: 100}]",
            "[0, 0]",
            "\n    - {qpn: 1, psn: 50, type: ecn, iter: 1, every: 50}",
        ),
        other => panic!("unknown setting {other}"),
    };
    let yaml = format!(
        r#"
requester:
  nic-type: {nic}
  dcqcn-rp-enable: true
responder:
  nic-type: {nic}
  dcqcn-np-enable: true
  min-time-between-cnps-us: 4
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: {msgs_per_qp}
  mtu: 1024
  message-size: 1048576
  tx-depth: 4
  qp-traffic-class: {classes}
  data-pkt-events:{events}
{ets}
"#,
        events = if ecn_event.is_empty() { " []" } else { ecn_event },
    );
    let res = run_yaml(&yaml);
    assert!(res.traffic_completed(), "{nic}/{setting} incomplete");
    let qpns: Vec<u32> = res.conns.iter().map(|c| c.requester.qpn).collect();
    let g = |qpn: u32| res.requester_metrics.flows[&qpn].goodput_gbps();
    Bars {
        setting: setting.into(),
        nic: nic.into(),
        qp0_gbps: g(qpns[0]),
        qp1_gbps: g(qpns[1]),
    }
}

/// Run the paper's figure (CX6 Dx).
pub fn run() -> Figure {
    run_on("cx6", 20)
}

/// Run the three settings on a given NIC model.
pub fn run_on(nic: &str, msgs_per_qp: u32) -> Figure {
    Figure {
        bars: SETTINGS
            .iter()
            .map(|s| measure(nic, s, msgs_per_qp))
            .collect(),
    }
}

/// Print the figure.
pub fn print(fig: &Figure) {
    println!("\nFigure 10: goodput of two QPs under three settings ({})", fig.bars[0].nic);
    let rows: Vec<Vec<String>> = fig
        .bars
        .iter()
        .map(|b| {
            vec![
                b.setting.clone(),
                format!("{:.1}", b.qp0_gbps),
                format!("{:.1}", b.qp1_gbps),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(&["setting", "QP0 (Gbps)", "QP1 (Gbps)"], &rows)
    );
}
