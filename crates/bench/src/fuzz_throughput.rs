//! Fuzz-campaign throughput: serial vs. parallel executor.
//!
//! Runs the same genetic campaign (same seed, same base configuration)
//! through the generation-based executor at several worker counts and
//! records wall clock, runs/sec, the speedup over the serial path, and —
//! because speed without equivalence would be worthless — whether each
//! parallel campaign's outcome is bit-identical to the serial one.
//!
//! The speedup ceiling is `min(workers, available_parallelism, batch)`;
//! on a single-core host every row measures ≈1×, which the output makes
//! visible by reporting the host's parallelism alongside.

use crate::common::render_table;
use lumina_core::config::TestConfig;
use lumina_core::fuzz::{fuzz, mutate::EventMutator, score, FuzzParams};
use serde::Serialize;
use std::time::Instant;

/// One measured campaign.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Worker threads (0 = the thread-free serial path).
    pub workers: usize,
    /// End-to-end campaign wall clock, milliseconds.
    pub wall_ms: f64,
    /// Simulation runs executed (scored candidates).
    pub runs: usize,
    /// Runs per wall-clock second.
    pub runs_per_sec: f64,
    /// Serial wall clock / this wall clock.
    pub speedup_vs_serial: f64,
    /// Outcome (history, rejections, final pool) bit-identical to serial.
    pub identical_outcome: bool,
}

/// The whole sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FuzzThroughput {
    /// Candidates per campaign.
    pub iterations: usize,
    /// Hardware threads the host offers (the speedup ceiling).
    pub available_parallelism: usize,
    /// One row per worker count.
    pub rows: Vec<ThroughputRow>,
}

fn bench_base() -> TestConfig {
    // Heavy enough that a run dominates scheduling overhead: 4
    // connections pushing 6 x 10 KB messages each through the full
    // switch + dumper pipeline.
    TestConfig::from_yaml(
        r#"
requester: { nic-type: cx4 }
responder: { nic-type: cx4 }
traffic:
  num-connections: 4
  rdma-verb: write
  num-msgs-per-qp: 6
  mtu: 1024
  message-size: 10240
  data-pkt-events:
    - {qpn: 1, psn: 5, type: drop, iter: 1}
"#,
    )
    .unwrap()
}

/// Fingerprint of everything the campaign decided, for the equivalence
/// column.
type Fingerprint = (Vec<u64>, usize, Vec<u64>);

fn fingerprint(out: &lumina_core::fuzz::FuzzOutcome) -> Fingerprint {
    (
        out.history.iter().map(|s| s.to_bits()).collect(),
        out.rejected,
        out.final_pool.iter().map(|s| s.score.to_bits()).collect(),
    )
}

/// Default sweep: 32 candidates, workers ∈ {serial, 2, 4}.
pub fn run() -> FuzzThroughput {
    run_with(32)
}

/// Sweep with a custom campaign size.
pub fn run_with(iterations: usize) -> FuzzThroughput {
    let base = bench_base();
    let params = FuzzParams {
        pool_size: 4,
        iterations,
        batch_size: 8,
        workers: 0,
        anomaly_threshold: 5.0,
        seed: 0xbe9c,
        ..Default::default()
    };
    let mut rows: Vec<ThroughputRow> = Vec::new();
    let mut serial: Option<(f64, Fingerprint)> = None;
    for workers in [0usize, 2, 4] {
        let mut m = EventMutator::default();
        let t0 = Instant::now();
        let out = fuzz(
            &base,
            &mut m,
            score::default_score,
            &FuzzParams {
                workers,
                ..params.clone()
            },
        );
        let wall = t0.elapsed().as_secs_f64();
        let fp = fingerprint(&out);
        let (serial_wall, serial_fp) = match &serial {
            None => {
                serial = Some((wall, fp.clone()));
                (wall, &serial.as_ref().unwrap().1)
            }
            Some((w, f)) => (*w, f),
        };
        rows.push(ThroughputRow {
            workers,
            wall_ms: wall * 1e3,
            runs: out.history.len(),
            runs_per_sec: if wall > 0.0 {
                out.history.len() as f64 / wall
            } else {
                0.0
            },
            speedup_vs_serial: if wall > 0.0 { serial_wall / wall } else { 0.0 },
            identical_outcome: fp == *serial_fp,
        });
    }
    FuzzThroughput {
        iterations,
        available_parallelism: lumina_core::fuzz::default_workers(),
        rows,
    }
}

/// Human rendering for the experiments binary.
pub fn print(f: &FuzzThroughput) {
    println!(
        "fuzz campaign throughput — {} candidates, host parallelism {}",
        f.iterations, f.available_parallelism
    );
    let rows: Vec<Vec<String>> = f
        .rows
        .iter()
        .map(|r| {
            vec![
                if r.workers == 0 {
                    "serial".into()
                } else {
                    format!("{}", r.workers)
                },
                format!("{:.1}", r.wall_ms),
                format!("{}", r.runs),
                format!("{:.1}", r.runs_per_sec),
                format!("{:.2}x", r.speedup_vs_serial),
                if r.identical_outcome { "yes" } else { "NO" }.into(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["workers", "wall ms", "runs", "runs/s", "speedup", "identical"],
            &rows
        )
    );
    if f.available_parallelism < 2 {
        println!("(single hardware thread: parallel speedup is capped at ~1x on this host)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_identical_outcomes() {
        let f = run_with(8);
        assert_eq!(f.rows.len(), 3);
        assert!(f.rows.iter().all(|r| r.identical_outcome));
        assert!(f.rows.iter().all(|r| r.runs > 0));
        assert!((f.rows[0].speedup_vs_serial - 1.0).abs() < 1e-9);
    }
}
