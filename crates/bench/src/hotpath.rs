//! Frame-plane hot path: zero-copy accounting, old model vs. new.
//!
//! The simulator's frame plane used to copy the full packet on every
//! hand-off: each hop, each mirror, each capture-ring entry owned its own
//! `Vec<u8>`. The shared-buffer plane replaced those copies with
//! reference-counted handles, and the engine counts both sides of the
//! ledger as it runs:
//!
//! * `bytes_copied`  — bytes actually memcpy'd (payload assembly at emit,
//!   copy-on-write detaches for in-flight mutation, dumper ring trims);
//! * `bytes_shared`  — bytes handed off by reference that the owned-`Vec`
//!   design would have copied.
//!
//! Their sum is the old design's bill, so the reduction column is
//! `bytes_shared / (bytes_copied + bytes_shared)`. The experiment runs
//! the paper's `fig11_noisy_neighbor` preset plus a high-rate stress
//! configuration, and — because a faster frame plane that changed a
//! single report byte would be worthless — each row also re-runs the
//! test and checks the `report_json` is bit-identical across runs.

use crate::common::render_table;
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use serde::Serialize;

/// One measured configuration.
#[derive(Debug, Clone, Serialize)]
pub struct HotpathRow {
    /// Configuration name.
    pub name: String,
    /// Packets captured in the reconstructed trace.
    pub packets: u64,
    /// Bytes actually copied, total.
    pub bytes_copied: u64,
    /// Bytes passed by shared reference (old design would copy them).
    pub bytes_shared: u64,
    /// Bytes copied per packet under the zero-copy plane.
    pub copied_per_pkt: f64,
    /// Bytes per packet the owned-`Vec` design would have copied.
    pub old_model_per_pkt: f64,
    /// Percent of the old design's copy bill eliminated.
    pub reduction_pct: f64,
    /// High-water mark of concurrently live frame buffers.
    pub peak_live_frames: u64,
    /// Two runs of the same config produce byte-identical `report_json`.
    pub identical_outcome: bool,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct Hotpath {
    /// One row per configuration.
    pub rows: Vec<HotpathRow>,
}

/// The paper preset the acceptance bar is measured on.
fn fig11_cfg() -> TestConfig {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../configs/fig11_noisy_neighbor.yaml"
    );
    let yaml = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: {e}"));
    TestConfig::from_yaml(&yaml).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// High-rate stress: many connections pushing many MTU-sized packets
/// through the full switch + mirror + dumper pipeline, with an injected
/// drop so the retransmission path is on the bill too.
fn stress_cfg() -> TestConfig {
    TestConfig::from_yaml(
        r#"
requester: { nic-type: cx5 }
responder: { nic-type: cx5 }
traffic:
  num-connections: 8
  rdma-verb: write
  num-msgs-per-qp: 8
  mtu: 1024
  message-size: 16384
  tx-depth: 4
  data-pkt-events:
    - {qpn: 1, psn: 9, type: drop, iter: 1}
    - {qpn: 3, psn: 4, type: ecn, iter: 1}
"#,
    )
    .expect("stress config parses")
}

fn measure(name: &str, cfg: &TestConfig) -> HotpathRow {
    let first = run_test(cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    let second = run_test(cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    let identical = serde_json::to_string(&first.report_json().unwrap()).unwrap()
        == serde_json::to_string(&second.report_json().unwrap()).unwrap();

    let fs = &first.frame_stats;
    let packets = first
        .trace
        .as_ref()
        .map(|t| t.len() as u64)
        .unwrap_or(0)
        .max(1);
    let old_bill = fs.bytes_copied + fs.bytes_shared;
    HotpathRow {
        name: name.to_string(),
        packets,
        bytes_copied: fs.bytes_copied,
        bytes_shared: fs.bytes_shared,
        copied_per_pkt: fs.bytes_copied as f64 / packets as f64,
        old_model_per_pkt: old_bill as f64 / packets as f64,
        reduction_pct: if old_bill > 0 {
            fs.bytes_shared as f64 / old_bill as f64 * 100.0
        } else {
            0.0
        },
        peak_live_frames: fs.peak_live_frames,
        identical_outcome: identical,
    }
}

/// Run both configurations.
pub fn run() -> Hotpath {
    Hotpath {
        rows: vec![
            measure("fig11_noisy_neighbor", &fig11_cfg()),
            measure("stress_high_rate", &stress_cfg()),
        ],
    }
}

/// Human rendering for the experiments binary.
pub fn print(h: &Hotpath) {
    println!("frame-plane hot path — copy bytes, zero-copy vs. owned-Vec model");
    let rows: Vec<Vec<String>> = h
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                format!("{}", r.packets),
                format!("{:.0}", r.copied_per_pkt),
                format!("{:.0}", r.old_model_per_pkt),
                format!("{:.1}%", r.reduction_pct),
                format!("{}", r.peak_live_frames),
                if r.identical_outcome { "yes" } else { "NO" }.into(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "config",
                "pkts",
                "copied/pkt",
                "old model/pkt",
                "reduction",
                "peak live",
                "identical"
            ],
            &rows
        )
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotpath_meets_the_reduction_bar() {
        let h = run();
        for r in &h.rows {
            assert!(r.identical_outcome, "{}: reports drifted between runs", r.name);
            assert!(r.packets > 0, "{}: empty trace", r.name);
        }
        let fig11 = &h.rows[0];
        assert_eq!(fig11.name, "fig11_noisy_neighbor");
        assert!(
            fig11.reduction_pct >= 30.0,
            "copy reduction {:.1}% below the 30% bar: {fig11:?}",
            fig11.reduction_pct
        );
    }
}
