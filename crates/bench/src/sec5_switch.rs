//! §5: event-injector capacity and latency accounting.
//!
//! The paper's prototype occupies four Tofino pipeline stages, needs about
//! 1 MB of on-chip memory to hold 100 K events for 10 K connections, adds
//! less than 0.4 µs of latency, and mirrors line-rate traffic losslessly.
//! This module reproduces the measurable accounting on the switch model.

use crate::common::run_yaml;
use lumina_switch::device::{SwitchConfig, SwitchNode};
use lumina_switch::events::EventAction;
use lumina_switch::iter::ConnKey;
use lumina_switch::table::InjectionKey;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The accounting results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Bytes of injector state for 100 K events + 10 K connections.
    pub memory_bytes_100k_events_10k_conns: usize,
    /// Pipeline latency of the model, nanoseconds.
    pub pipeline_latency_ns: u64,
    /// Mirror copies vs RoCE packets under line-rate pressure (must be
    /// equal: lossless mirroring).
    pub pressure_roce_rx: u64,
    /// Mirror copies emitted under the same pressure.
    pub pressure_mirrored: u64,
    /// Did the pressure run keep the trace complete?
    pub pressure_integrity: bool,
}

/// Run the accounting.
pub fn run() -> Report {
    // ---- Capacity: 100 K events across 10 K connections ----
    let mut sw = SwitchNode::new(SwitchConfig::lumina(HashMap::new(), vec![]));
    for conn_idx in 0..10_000u32 {
        let conn = ConnKey {
            src_ip: Ipv4Addr::new(10, (conn_idx >> 8) as u8, conn_idx as u8, 1),
            dst_ip: Ipv4Addr::new(10, (conn_idx >> 8) as u8, conn_idx as u8, 2),
            dst_qpn: conn_idx,
        };
        // Touch the ITER tracker the way live traffic would.
        sw.iter.observe(conn, 0);
        for e in 0..10u32 {
            sw.table.insert(
                InjectionKey {
                    conn,
                    psn: e + 1,
                    iter: 1,
                },
                EventAction::Drop,
            );
        }
    }
    assert_eq!(sw.table.len(), 100_000);
    let memory = sw.memory_bytes();

    // ---- Latency + lossless mirroring under line-rate pressure ----
    let yaml = r#"
requester: { nic-type: cx5 }
responder: { nic-type: cx5 }
traffic:
  num-connections: 4
  rdma-verb: write
  num-msgs-per-qp: 8
  mtu: 1024
  message-size: 1048576
  tx-depth: 8
"#;
    let res = run_yaml(yaml);
    assert!(res.traffic_completed());
    Report {
        memory_bytes_100k_events_10k_conns: memory,
        pipeline_latency_ns: 380,
        pressure_roce_rx: res.switch_counters.roce_rx_total,
        pressure_mirrored: res.switch_counters.mirrored_total,
        pressure_integrity: res.integrity.passed(),
    }
}

/// Print it.
pub fn print(r: &Report) {
    println!("\n§5: injector capacity & latency");
    println!(
        "state for 100K events / 10K conns: {:.2} MB (paper: ~1 MB)",
        r.memory_bytes_100k_events_10k_conns as f64 / 1e6
    );
    println!(
        "pipeline latency: {} ns (paper: < 0.4 us)",
        r.pipeline_latency_ns
    );
    println!(
        "line-rate pressure: {} RoCE packets in, {} mirrored, integrity {}",
        r.pressure_roce_rx,
        r.pressure_mirrored,
        if r.pressure_integrity { "pass" } else { "FAIL" }
    );
}
