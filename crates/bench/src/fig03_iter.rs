//! Figure 3: the ITER tracking walkthrough, reproduced against the real
//! injector state machine.
//!
//! The scenario: four packets, drop PSN 2 in round 1 and PSN 3 in round 2.
//! The observed arrival sequence at the switch is
//! `1 2 3 4 | 2 3 4 | 3 4` with ITER `1 1 1 1 | 2 2 2 | 3 3`.

use lumina_switch::iter::{ConnKey, IterTracker};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The figure's data: each observed packet with its assigned ITER.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Figure {
    /// `(psn, iter)` per arriving packet, in order.
    pub observations: Vec<(u32, u32)>,
}

/// Replay Figure 3's arrival sequence through the tracker.
pub fn run() -> Figure {
    let mut tracker = IterTracker::default();
    let key = ConnKey {
        src_ip: Ipv4Addr::new(10, 0, 0, 1),
        dst_ip: Ipv4Addr::new(10, 0, 0, 2),
        dst_qpn: 0xea,
    };
    let arrivals = [1u32, 2, 3, 4, 2, 3, 4, 3, 4];
    Figure {
        observations: arrivals
            .iter()
            .map(|&psn| (psn, tracker.observe(key, psn)))
            .collect(),
    }
}

/// The ITER sequence the paper's figure shows.
pub const EXPECTED_ITERS: [u32; 9] = [1, 1, 1, 1, 2, 2, 2, 3, 3];

/// Print the figure.
pub fn print(fig: &Figure) {
    println!("\nFigure 3: ITER tracking (drop PSN 2 @ iter 1, PSN 3 @ iter 2)");
    let psns: Vec<String> = fig.observations.iter().map(|o| o.0.to_string()).collect();
    let iters: Vec<String> = fig.observations.iter().map(|o| o.1.to_string()).collect();
    println!("PSN : {}", psns.join(" "));
    println!("ITER: {}", iters.join(" "));
    let ok = fig
        .observations
        .iter()
        .map(|o| o.1)
        .eq(EXPECTED_ITERS.iter().copied());
    println!("matches paper: {}", if ok { "yes" } else { "NO" });
}
