//! §3.4: traffic-dumper load balancing.
//!
//! The paper's initial design — one dumper per traffic direction, no
//! destination-port randomization — lost mirror copies under line-rate
//! traffic and capped the capture success ratio near 30 %. The final
//! design (weighted round-robin across a dumper pool + UDP
//! destination-port randomization so RSS spreads each dumper's load over
//! all CPU cores) raised it to ~100 %.
//!
//! Here both designs capture the same line-rate transfer; we report the
//! fraction of mirror copies that survived into the trace and whether the
//! integrity check passed.

use crate::common::run_yaml;
use serde::{Deserialize, Serialize};

/// One design's capture outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// Design label.
    pub design: String,
    /// Mirror copies the switch emitted.
    pub mirrored: u64,
    /// Copies that survived into the reconstructed capture set.
    pub captured: u64,
    /// Copies lost to dumper overload.
    pub discarded: u64,
    /// Capture success ratio (captured / mirrored).
    pub success_ratio: f64,
    /// Did the §3.5 integrity check pass?
    pub integrity_passed: bool,
}

/// The experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Experiment {
    /// One point per design.
    pub points: Vec<Point>,
}

/// Run one design.
pub fn measure(design: &str) -> Point {
    let (dumpers, extra) = match design {
        // Two dumpers, one per ingress direction, same 5-tuple per flow →
        // each dumper funnels everything into one RSS core.
        "naive-two-hosts" => (
            2,
            "  per-port-mirroring: true\n  no-dport-randomization: true\n",
        ),
        // The paper's final design.
        "wrr-pool" => (3, ""),
        other => panic!("unknown design {other}"),
    };
    // Line-rate pressure: one big pipelined transfer.
    let yaml = format!(
        r#"
requester: {{ nic-type: cx5 }}
responder: {{ nic-type: cx5 }}
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 16
  mtu: 1024
  message-size: 1048576
  tx-depth: 8
network:
  num-dumpers: {dumpers}
{extra}"#
    );
    let res = run_yaml(&yaml);
    assert!(res.traffic_completed());
    let mirrored = res.switch_counters.mirrored_total;
    let discarded = res.dumper_discards;
    let captured = mirrored - discarded;
    Point {
        design: design.into(),
        mirrored,
        captured,
        discarded,
        success_ratio: captured as f64 / mirrored.max(1) as f64,
        integrity_passed: res.integrity.passed(),
    }
}

/// Run both designs.
pub fn run() -> Experiment {
    Experiment {
        points: vec![measure("naive-two-hosts"), measure("wrr-pool")],
    }
}

/// Print it.
pub fn print(exp: &Experiment) {
    println!("\n§3.4: dumper load balancing — capture success under line-rate mirroring");
    let rows: Vec<Vec<String>> = exp
        .points
        .iter()
        .map(|p| {
            vec![
                p.design.clone(),
                p.mirrored.to_string(),
                p.captured.to_string(),
                format!("{:.1}%", p.success_ratio * 100.0),
                if p.integrity_passed { "pass" } else { "FAIL" }.into(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(
            &["design", "mirrored", "captured", "success", "integrity"],
            &rows
        )
    );
    println!("paper: ~30% success with the naive design, ~100% with the pool");
}
