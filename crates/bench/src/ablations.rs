//! Ablation studies of the modeled design choices — the "what would fixed
//! silicon look like" experiments DESIGN.md calls out.
//!
//! 1. **ETS fix** — the CX6 Dx with work conservation forced on: Figure
//!    10's setting 2 recovers the spare bandwidth, confirming the
//!    scheduler (and nothing else) causes the throughput loss.
//! 2. **Recovery-context sweep** — vary the CX4 Lx's recovery-context
//!    pool and watch the noisy-neighbor cliff move: the collapse happens
//!    exactly where concurrent drops exceed the pool.
//! 3. **APM queue sweep** — vary the CX5's APM queue capacity: discards
//!    at 16 QPs shrink as the queue grows, vanishing once the first-message
//!    burst fits.

use crate::common::run_yaml;
use serde::{Deserialize, Serialize};

/// ETS-fix ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EtsFix {
    /// QP1 goodput on the stock (buggy) CX6 Dx, multi-queue + ECN.
    pub stock_qp1_gbps: f64,
    /// QP1 goodput with work conservation forced on.
    pub fixed_qp1_gbps: f64,
    /// QP1 goodput in the vanilla (no ECN) setting, for reference.
    pub vanilla_qp1_gbps: f64,
}

/// Run the ETS fix ablation.
pub fn ets_fix(msgs: u32) -> EtsFix {
    let run = |force_fix: bool, ecn: bool| -> f64 {
        let over = if force_fix {
            "\n  override-ets-work-conserving: true"
        } else {
            ""
        };
        let ev = if ecn {
            "\n    - {qpn: 1, psn: 50, type: ecn, iter: 1, every: 50}"
        } else {
            ""
        };
        let yaml = format!(
            r#"
requester:
  nic-type: cx6
  dcqcn-rp-enable: true{over}
responder:
  nic-type: cx6
  dcqcn-np-enable: true
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: {msgs}
  mtu: 1024
  message-size: 1048576
  tx-depth: 4
  qp-traffic-class: [0, 1]
  data-pkt-events:{events}
ets:
  queues: [{{weight: 50}}, {{weight: 50}}]
"#,
            events = if ev.is_empty() { " []" } else { ev },
        );
        let res = run_yaml(&yaml);
        let qpn1 = res.conns[1].requester.qpn;
        res.requester_metrics.flows[&qpn1].goodput_gbps()
    };
    EtsFix {
        stock_qp1_gbps: run(false, true),
        fixed_qp1_gbps: run(true, true),
        vanilla_qp1_gbps: run(false, false),
    }
}

/// One point of the recovery-context sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContextPoint {
    /// Recovery contexts configured.
    pub contexts: usize,
    /// Innocent-flow average MCT, ms (12 drop-injected of 24 read flows).
    pub innocent_mct_ms: f64,
    /// Requester RX discards.
    pub rx_discards: u64,
}

/// Sweep the CX4 Lx recovery-context pool against 12 concurrent drops.
pub fn context_sweep(contexts: &[usize]) -> Vec<ContextPoint> {
    contexts
        .iter()
        .map(|&n| {
            let events: String = (1..=12)
                .map(|q| format!("\n    - {{qpn: {q}, psn: 5, type: drop, iter: 1}}"))
                .collect();
            let yaml = format!(
                r#"
requester:
  nic-type: cx4
  override-recovery-contexts: {n}
responder: {{ nic-type: cx4 }}
traffic:
  num-connections: 24
  rdma-verb: read
  num-msgs-per-qp: 3
  mtu: 1024
  message-size: 20480
  data-pkt-events:{events}
network:
  horizon-ms: 120000
"#
            );
            let res = run_yaml(&yaml);
            let innocents: Vec<f64> = res
                .conns
                .iter()
                .filter(|c| c.index > 12)
                .flat_map(|c| {
                    res.requester_metrics.flows[&c.requester.qpn]
                        .mcts
                        .iter()
                        .map(|t| t.as_millis_f64())
                })
                .collect();
            ContextPoint {
                contexts: n,
                innocent_mct_ms: innocents.iter().sum::<f64>() / innocents.len() as f64,
                rx_discards: res.requester_counters.rx_discards_phy,
            }
        })
        .collect()
}

/// One point of the APM queue sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApmPoint {
    /// Queue capacity.
    pub capacity: usize,
    /// Responder RX discards at 16 QPs of E810→CX5 Send traffic.
    pub rx_discards: u64,
}

/// Sweep the CX5 APM queue capacity.
pub fn apm_sweep(capacities: &[usize]) -> Vec<ApmPoint> {
    capacities
        .iter()
        .map(|&cap| {
            let yaml = format!(
                r#"
requester: {{ nic-type: e810 }}
responder:
  nic-type: cx5
  override-apm-queue-capacity: {cap}
traffic:
  num-connections: 16
  rdma-verb: send
  num-msgs-per-qp: 3
  mtu: 1024
  message-size: 102400
network:
  horizon-ms: 60000
"#
            );
            let res = run_yaml(&yaml);
            ApmPoint {
                capacity: cap,
                rx_discards: res.responder_counters.rx_discards_phy,
            }
        })
        .collect()
}

/// Run and print all ablations.
pub fn print_all() {
    let fix = ets_fix(5);
    println!("\nAblation 1: CX6 Dx ETS with work conservation forced on");
    println!(
        "QP1 under multi-queue+ECN: stock {:.1} Gbps → fixed {:.1} Gbps (vanilla {:.1})",
        fix.stock_qp1_gbps, fix.fixed_qp1_gbps, fix.vanilla_qp1_gbps
    );

    println!("\nAblation 2: CX4 Lx recovery-context sweep (12 concurrent drops)");
    let rows: Vec<Vec<String>> = context_sweep(&[4, 8, 10, 16, 32])
        .iter()
        .map(|p| {
            vec![
                p.contexts.to_string(),
                format!("{:.2}", p.innocent_mct_ms),
                p.rx_discards.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(&["contexts", "innocent MCT (ms)", "discards"], &rows)
    );

    println!("\nAblation 3: CX5 APM queue capacity sweep (16 QPs from E810)");
    let rows: Vec<Vec<String>> = apm_sweep(&[128, 512, 1024, 2048, 4096])
        .iter()
        .map(|p| vec![p.capacity.to_string(), p.rx_discards.to_string()])
        .collect();
    print!(
        "{}",
        crate::common::render_table(&["capacity", "discards"], &rows)
    );
}
