//! §6.3: adaptive retransmission on NVIDIA NICs.
//!
//! Two measurements per NIC, with `timeout = 14` (67.1 ms minimum) and
//! `retry_cnt = 7`:
//!
//! 1. **Timeout sequence** — drop the last packet of the first message
//!    seven times and measure the spacing of its retransmissions from the
//!    trace. With adaptive retransmission on, NVIDIA NICs undershoot the
//!    configured minimum (CX6 Dx: 5.6, 4.1, 8.4, 16.7, 25.1, 67.1,
//!    134.2 ms); with it off, every timeout honors the IB formula.
//! 2. **Retry budget** — drop *every* transmission of the last packet and
//!    count retries until the QP errors out: 8–13 with adaptive on,
//!    exactly `retry_cnt + 1` timeouts with it off.

use crate::common::run_yaml;
use lumina_packet::opcode::Opcode;
use serde::{Deserialize, Serialize};

/// Measurement of one NIC in one mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// NIC name.
    pub nic: String,
    /// Adaptive retransmission enabled.
    pub adaptive: bool,
    /// Consecutive timeout intervals, milliseconds.
    pub timeout_sequence_ms: Vec<f64>,
    /// Retries performed before the QP gave up (retry-budget experiment).
    pub retries_until_error: u64,
}

/// Whole experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Experiment {
    /// One point per (nic, adaptive).
    pub points: Vec<Point>,
}

/// Measure the timeout sequence: drop the last packet `n_drops` times.
pub fn timeout_sequence(nic: &str, adaptive: bool, n_drops: u32) -> Vec<f64> {
    let last_psn = 4; // 4096-byte message at MTU 1024 → packets 1..=4
    let events: String = (1..=n_drops)
        .map(|k| format!("\n    - {{qpn: 1, psn: {last_psn}, type: drop, iter: {k}}}"))
        .collect();
    let yaml = format!(
        r#"
requester:
  nic-type: {nic}
  adaptive-retrans: {adaptive}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 4096
  min-retransmit-timeout: 14
  max-retransmit-retry: 7
  data-pkt-events:{events}
network:
  horizon-ms: 30000
"#
    );
    let res = run_yaml(&yaml);
    assert!(res.traffic_completed(), "{nic}: incomplete");
    let trace = res.trace.as_ref().unwrap();
    let meta = &res.conns[0];
    let wanted_psn = meta.data_psn(last_psn);
    let times: Vec<_> = trace
        .iter()
        .filter(|e| {
            e.frame.bth.psn == wanted_psn
                && e.frame.bth.opcode.is_data()
                && e.frame.bth.opcode != Opcode::RdmaReadRequest
        })
        .map(|e| e.timestamp)
        .collect();
    assert_eq!(times.len() as u32, n_drops + 1, "{nic}: transmissions");
    times
        .windows(2)
        .map(|w| w[1].saturating_since(w[0]).as_millis_f64())
        .collect()
}

/// Count retries until the QP errors: drop every transmission of the last
/// packet.
pub fn retries_until_error(nic: &str, adaptive: bool) -> u64 {
    let events: String = (1..=20)
        .map(|k| format!("\n    - {{qpn: 1, psn: 4, type: drop, iter: {k}}}"))
        .collect();
    let yaml = format!(
        r#"
requester:
  nic-type: {nic}
  adaptive-retrans: {adaptive}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 4096
  min-retransmit-timeout: 14
  max-retransmit-retry: 7
  data-pkt-events:{events}
network:
  horizon-ms: 120000
"#
    );
    let res = run_yaml(&yaml);
    let failed: u32 = res
        .requester_metrics
        .flows
        .values()
        .map(|f| f.failed)
        .sum();
    assert_eq!(failed, 1, "{nic}: QP must exhaust retries");
    // Retries = timeouts − 1 (the final timeout errors out instead of
    // retransmitting).
    res.requester_counters.local_ack_timeout_err.saturating_sub(1)
}

/// Run the experiment on the NVIDIA NICs (the feature does not exist on
/// the E810).
pub fn run() -> Experiment {
    let mut exp = Experiment::default();
    for nic in ["cx4", "cx5", "cx6"] {
        for adaptive in [true, false] {
            exp.points.push(Point {
                nic: nic.into(),
                adaptive,
                timeout_sequence_ms: timeout_sequence(nic, adaptive, 6),
                retries_until_error: retries_until_error(nic, adaptive),
            });
        }
    }
    exp
}

/// Print it.
pub fn print(exp: &Experiment) {
    println!("\n§6.3: adaptive retransmission (timeout=14 → 67.1 ms min, retry_cnt=7)");
    let rows: Vec<Vec<String>> = exp
        .points
        .iter()
        .map(|p| {
            vec![
                p.nic.to_uppercase(),
                if p.adaptive { "on" } else { "off" }.into(),
                p.timeout_sequence_ms
                    .iter()
                    .map(|v| format!("{v:.1}"))
                    .collect::<Vec<_>>()
                    .join(" "),
                p.retries_until_error.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(
            &["nic", "adaptive", "timeout sequence (ms)", "retries"],
            &rows
        )
    );
    println!("paper (CX6 Dx, adaptive on): 5.6 4.1 8.4 16.7 25.1 67.1 [134.2]; retries 8-13");
}
