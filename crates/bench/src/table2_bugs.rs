//! Table 2: the bug and hidden-behavior summary.
//!
//! Runs a compact detection probe for each finding across all four NIC
//! models and reports which NICs exhibit it, next to the paper's
//! attribution:
//!
//! | finding | paper says |
//! |---|---|
//! | Non-work-conserving ETS | CX6 Dx |
//! | Noisy neighbor | CX4 Lx |
//! | Interoperability problem | CX5 + E810 |
//! | Counter inconsistency | CX4 Lx, E810 |
//! | CNP rate limiting (hidden/undocumented behavior) | all NICs |
//! | Adaptive retransmission deviation | all CX NICs |

use crate::common::NICS;
use serde::{Deserialize, Serialize};

/// One row of the table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Finding name.
    pub finding: String,
    /// NICs the detection probes flagged.
    pub detected: Vec<String>,
    /// NICs the paper attributes the finding to.
    pub paper: Vec<String>,
}

impl Row {
    /// Detection matches the paper exactly.
    pub fn matches_paper(&self) -> bool {
        let mut d = self.detected.clone();
        let mut p = self.paper.clone();
        d.sort();
        p.sort();
        d == p
    }
}

/// The table.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Table {
    /// All rows.
    pub rows: Vec<Row>,
}

fn detect_non_work_conserving_ets(nic: &str) -> bool {
    // Probe: the Figure 10 "multi-queue with ECN" setting; the bug shows
    // as QP1 failing to exceed ~its 50 % guarantee although QP0 is slowed.
    let bars = crate::fig10_ets::measure(nic, "multi-queue-ecn", 5);
    let vanilla = crate::fig10_ets::measure(nic, "multi-queue-vanilla", 5);
    bars.qp0_gbps < vanilla.qp0_gbps * 0.8 && bars.qp1_gbps < vanilla.qp1_gbps * 1.15
}

fn detect_noisy_neighbor(nic: &str) -> bool {
    // Probe: a compact Figure 11 point — 24 read flows, 12 with drops.
    let clean = crate::fig11_noisy::measure(nic, 0, 24, 3);
    let noisy = crate::fig11_noisy::measure(nic, 12, 24, 3);
    noisy.rx_discards > 0 && noisy.innocent_avg_mct_ms > clean.innocent_avg_mct_ms * 10.0
}

fn detect_interop(nic_pair: (&str, &str)) -> bool {
    let p = crate::interop::measure_pair(nic_pair.0, nic_pair.1, 16);
    p.responder_discards > 0
}

fn detect_counter_bug(nic: &str) -> bool {
    use lumina_core::analyzers::counter;
    use lumina_core::config::TestConfig;
    use lumina_core::orchestrator::run_test;
    // Probe 1: ECN toward the NP, check cnpSent (E810 bug).
    let ecn = format!(
        r#"
requester: {{ nic-type: {nic}, dcqcn-rp-enable: true }}
responder: {{ nic-type: {nic}, dcqcn-np-enable: true }}
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 20480
  data-pkt-events:
    - {{qpn: 1, psn: 1, type: ecn, iter: 1, every: 2}}
"#
    );
    let res = run_test(&TestConfig::from_yaml(&ecn).unwrap()).unwrap();
    if !counter::analyze(&res).is_empty() {
        return true;
    }
    // Probe 2: read-response drop, check implied_nak (CX4 Lx bug).
    let read = format!(
        r#"
requester: {{ nic-type: {nic} }}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: 1
  rdma-verb: read
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 10240
  data-pkt-events:
    - {{qpn: 1, psn: 4, type: drop, iter: 1}}
"#
    );
    let res = run_test(&TestConfig::from_yaml(&read).unwrap()).unwrap();
    !counter::analyze(&res).is_empty()
}

fn detect_cnp_rate_limiting(nic: &str) -> bool {
    // Every NIC rate-limits CNP generation in some undocumented way: mark
    // every packet and check that CNPs were coalesced (fewer CNPs than CE
    // marks) or a minimum interval was enforced.
    let p = crate::cnp_behavior::measure_interval(nic, 4);
    p.cnps > 0 && (p.cnps < p.ce_marked || p.measured_min_us >= 3.9)
}

fn detect_adaptive_retrans(nic: &str) -> bool {
    if !["cx4", "cx5", "cx6"].contains(&nic) {
        return false; // feature absent on Intel
    }
    let seq = crate::adaptive_retrans::timeout_sequence(nic, true, 2);
    // Deviation: any timeout under the configured 67.1 ms minimum.
    seq.iter().any(|&ms| ms < 60.0)
}

/// Build the table.
pub fn run() -> Table {
    let mut rows = Vec::new();
    let detect_all = |f: &dyn Fn(&str) -> bool| -> Vec<String> {
        NICS.iter()
            .filter(|n| f(n))
            .map(|n| n.to_uppercase())
            .collect()
    };

    rows.push(Row {
        finding: "Non-work-conserving ETS".into(),
        detected: detect_all(&detect_non_work_conserving_ets),
        paper: vec!["CX6".into()],
    });
    rows.push(Row {
        finding: "Noisy neighbor".into(),
        detected: detect_all(&detect_noisy_neighbor),
        paper: vec!["CX4".into()],
    });
    rows.push(Row {
        finding: "Interoperability problem".into(),
        detected: {
            let mut v = Vec::new();
            if detect_interop(("e810", "cx5")) {
                v.push("CX5".into());
                v.push("E810".into());
            }
            v
        },
        paper: vec!["CX5".into(), "E810".into()],
    });
    rows.push(Row {
        finding: "Counter inconsistency".into(),
        detected: detect_all(&detect_counter_bug),
        paper: vec!["CX4".into(), "E810".into()],
    });
    rows.push(Row {
        finding: "CNP rate limiting".into(),
        detected: detect_all(&detect_cnp_rate_limiting),
        paper: NICS.iter().map(|n| n.to_uppercase()).collect(),
    });
    rows.push(Row {
        finding: "Adaptive retransmission".into(),
        detected: detect_all(&detect_adaptive_retrans),
        paper: vec!["CX4".into(), "CX5".into(), "CX6".into()],
    });
    Table { rows }
}

/// Print it.
pub fn print(table: &Table) {
    println!("\nTable 2: bugs and hidden behaviors — detected vs paper");
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.finding.clone(),
                r.detected.join("+"),
                r.paper.join("+"),
                if r.matches_paper() { "yes" } else { "NO" }.into(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(&["finding", "detected", "paper", "match"], &rows)
    );
}
