//! Experiment harnesses regenerating every table and figure of the paper.
//!
//! Each module owns one experiment: it builds the configurations, runs the
//! simulated testbed through `lumina-core`'s orchestrator, post-processes
//! with the analyzers, and returns a serializable series shaped like the
//! paper's plot. The `lumina-experiments` binary prints them; the Criterion
//! benches in `benches/` time them; the integration tests in the workspace
//! root assert their shapes against the paper's findings.
//!
//! | module | reproduces |
//! |--------|------------|
//! | [`fig03_iter`] | Figure 3 — ITER tracking walkthrough |
//! | [`fig07_overhead`] | Figure 7 — Lumina's impact on MCT |
//! | [`fig08_09_retrans`] | Figures 8 & 9 — NACK generation/reaction latency sweeps |
//! | [`fig10_ets`] | Figure 10 — ETS goodput under three settings (CX6 Dx bug) |
//! | [`fig11_noisy`] | Figure 11 — noisy neighbor on CX4 Lx |
//! | [`table2_bugs`] | Table 2 — bug & hidden-behavior detection suite |
//! | [`interop`] | §6.2.3 — CX5↔E810 MigReq interoperability |
//! | [`cnp_behavior`] | §6.3 — CNP intervals & rate-limiting modes |
//! | [`adaptive_retrans`] | §6.3 — adaptive retransmission timeouts |
//! | [`sec34_dumper`] | §3.4 — dumper load-balancing success ratio |
//! | [`ablations`] | beyond the paper — causal knobs for each modeled quirk |
//! | [`sec5_switch`] | §5 — injector capacity & latency accounting |
//! | [`fuzz_throughput`] | §4 — fuzz-campaign throughput, serial vs. parallel |
//! | [`hotpath`] | beyond the paper — frame-plane copy accounting, zero-copy vs. owned-Vec |

pub mod ablations;
pub mod adaptive_retrans;
pub mod cnp_behavior;
pub mod common;
pub mod fig03_iter;
pub mod fig07_overhead;
pub mod fig08_09_retrans;
pub mod fig10_ets;
pub mod fig11_noisy;
pub mod fuzz_throughput;
pub mod hotpath;
pub mod interop;
pub mod sec34_dumper;
pub mod sec5_switch;
pub mod table2_bugs;
