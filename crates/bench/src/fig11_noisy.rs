//! Figure 11: the CX4 Lx "noisy neighbor" (§6.2.2).
//!
//! 36 Read connections transfer ten 20 KB messages each; the 5th data
//! packet of the first `i` connections is dropped (`i ∈ {0, 8, 12, 16}`).
//! With `i ≤ 8` the innocent connections are unaffected (MCT ≈ 160 µs);
//! with `i ≥ 12` the concurrent read-recovery slow paths exceed the CX4
//! Lx's shared recovery contexts, the RX pipeline stalls, innocent read
//! responses are discarded (`rx_discards_phy`), and innocent flows collapse
//! into timeout-dominated MCTs (the paper measures ≈ 430 ms).

use crate::common::run_yaml;
use serde::{Deserialize, Serialize};

/// The sweep of drop-injected flow counts from the figure.
pub const DROP_COUNTS: [u32; 4] = [0, 8, 12, 16];

/// Result of one sweep point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// Number of drop-injected flows.
    pub injected: u32,
    /// Average MCT of the drop-injected flows, milliseconds.
    pub victim_avg_mct_ms: Option<f64>,
    /// Average MCT of the innocent flows, milliseconds.
    pub innocent_avg_mct_ms: f64,
    /// `rx_discards_phy` on the requester NIC.
    pub rx_discards: u64,
}

/// The figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Figure {
    /// One point per sweep value.
    pub points: Vec<Point>,
    /// NIC under test.
    pub nic: String,
}

/// Run one sweep point on a NIC model.
pub fn measure(nic: &str, injected: u32, total_flows: u32, msgs: u32) -> Point {
    let mut events = String::new();
    for q in 1..=injected {
        events.push_str(&format!(
            "\n    - {{qpn: {q}, psn: 5, type: drop, iter: 1}}"
        ));
    }
    let yaml = format!(
        r#"
requester: {{ nic-type: {nic} }}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: {total_flows}
  rdma-verb: read
  num-msgs-per-qp: {msgs}
  mtu: 1024
  message-size: 20480
  tx-depth: 1
  data-pkt-events:{ev}
network:
  horizon-ms: 120000
"#,
        ev = if events.is_empty() { " []" } else { &events },
    );
    let res = run_yaml(&yaml);
    assert!(
        res.traffic_completed(),
        "{nic}/i={injected}: traffic incomplete at {}",
        res.end_time
    );
    let victims: Vec<u32> = res
        .conns
        .iter()
        .filter(|c| c.index <= injected)
        .map(|c| c.requester.qpn)
        .collect();
    let mct_of = |qpns: &[u32]| -> Option<f64> {
        let all: Vec<f64> = qpns
            .iter()
            .flat_map(|q| res.requester_metrics.flows[q].mcts.iter())
            .map(|t| t.as_millis_f64())
            .collect();
        if all.is_empty() {
            None
        } else {
            Some(all.iter().sum::<f64>() / all.len() as f64)
        }
    };
    let innocents: Vec<u32> = res
        .conns
        .iter()
        .filter(|c| c.index > injected)
        .map(|c| c.requester.qpn)
        .collect();
    Point {
        injected,
        victim_avg_mct_ms: mct_of(&victims),
        innocent_avg_mct_ms: mct_of(&innocents).expect("innocent flows exist"),
        rx_discards: res.requester_counters.rx_discards_phy,
    }
}

/// Run the paper's figure: CX4 Lx, 36 flows, 10 messages.
pub fn run() -> Figure {
    run_on("cx4", 36, 10)
}

/// Run a parameterized sweep.
pub fn run_on(nic: &str, total_flows: u32, msgs: u32) -> Figure {
    Figure {
        nic: nic.into(),
        points: DROP_COUNTS
            .iter()
            .map(|&i| measure(nic, i, total_flows, msgs))
            .collect(),
    }
}

/// Print the figure.
pub fn print(fig: &Figure) {
    println!(
        "\nFigure 11: noisy neighbor on {} — avg MCT (ms) of innocent vs drop-injected flows",
        fig.nic
    );
    let rows: Vec<Vec<String>> = fig
        .points
        .iter()
        .map(|p| {
            vec![
                p.injected.to_string(),
                p.victim_avg_mct_ms
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.2}", p.innocent_avg_mct_ms),
                p.rx_discards.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(
            &["injected", "victim MCT", "innocent MCT", "rx_discards"],
            &rows
        )
    );
}
