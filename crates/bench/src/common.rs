//! Shared helpers for the experiment harnesses.

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::{run_test, TestResults};

/// Run a YAML configuration, panicking with context on any failure —
/// experiments are supposed to be green by construction.
pub fn run_yaml(yaml: &str) -> TestResults {
    let cfg = TestConfig::from_yaml(yaml)
        .unwrap_or_else(|e| panic!("experiment config invalid: {e}\n---\n{yaml}"));
    run_test(&cfg).unwrap_or_else(|e| panic!("experiment failed: {e}"))
}

/// Run an already-built configuration.
pub fn run_cfg(cfg: &TestConfig) -> TestResults {
    run_test(cfg).unwrap_or_else(|e| panic!("experiment failed: {e}"))
}

/// The four devices, in the paper's order, by config name.
pub const NICS: [&str; 4] = ["cx4", "cx5", "cx6", "e810"];

/// Render a simple aligned table: header + rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["nic", "latency"],
            &[
                vec!["cx5".into(), "2.1".into()],
                vec!["e810".into(), "83000.0".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("nic"));
        assert!(lines[3].contains("83000.0"));
    }
}
