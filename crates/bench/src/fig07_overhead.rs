//! Figure 7: Lumina's impact on message completion time.
//!
//! Paper setup (§5): 1000 back-to-back messages of 1 KB / 10 KB / 100 KB
//! over one connection, comparing full Lumina against Lumina without
//! mirroring (Lumina-nm), Lumina without event injection (Lumina-ne) and a
//! plain L2-forwarding switch program. The finding: Lumina's MCT is only
//! 4.1–7.2 % above Lumina-ne and L2-forwarding, and mirroring is free.

use crate::common::run_yaml;
use serde::{Deserialize, Serialize};

/// Message sizes swept in the figure.
pub const SIZES_KB: [u32; 3] = [1, 10, 100];

/// The switch variants, in the paper's legend order.
pub const VARIANTS: [&str; 4] = ["lumina", "lumina-nm", "lumina-ne", "l2-forward"];

/// Average MCT for one (variant, size) cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// Switch variant.
    pub variant: String,
    /// Message size in KB.
    pub size_kb: u32,
    /// Mean message completion time, µs.
    pub mct_us: f64,
}

/// The full figure.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Figure {
    /// All cells.
    pub cells: Vec<Cell>,
}

impl Figure {
    /// MCT of a cell.
    pub fn mct(&self, variant: &str, size_kb: u32) -> f64 {
        self.cells
            .iter()
            .find(|c| c.variant == variant && c.size_kb == size_kb)
            .map(|c| c.mct_us)
            .unwrap_or(f64::NAN)
    }

    /// Lumina's relative overhead over the L2-forward baseline at a size.
    pub fn overhead_pct(&self, size_kb: u32) -> f64 {
        let lum = self.mct("lumina", size_kb);
        let l2 = self.mct("l2-forward", size_kb);
        (lum - l2) / l2 * 100.0
    }
}

/// Measure one cell.
pub fn measure(variant: &str, size_kb: u32, num_msgs: u32) -> Cell {
    // Full Lumina keeps its match-action stages on the path but injects
    // nothing (the paper disables the exact drop behavior to prevent
    // retransmissions from polluting the measurement).
    let yaml = format!(
        r#"
requester: {{ nic-type: cx6 }}
responder: {{ nic-type: cx6 }}
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: {num_msgs}
  mtu: 1024
  message-size: {size}
network:
  switch-mode: {variant}
"#,
        size = size_kb * 1024,
    );
    let res = run_yaml(&yaml);
    assert!(res.traffic_completed(), "{variant}/{size_kb}KB incomplete");
    let mct = res
        .requester_metrics
        .avg_mct()
        .expect("MCTs recorded")
        .as_micros_f64();
    Cell {
        variant: variant.into(),
        size_kb,
        mct_us: mct,
    }
}

/// Run the full figure (1000 messages per cell, like the paper).
pub fn run() -> Figure {
    run_with_msgs(1000)
}

/// Run with a configurable message count (tests use fewer for speed).
pub fn run_with_msgs(num_msgs: u32) -> Figure {
    let mut fig = Figure::default();
    for variant in VARIANTS {
        for size in SIZES_KB {
            fig.cells.push(measure(variant, size, num_msgs));
        }
    }
    fig
}

/// Print the figure.
pub fn print(fig: &Figure) {
    println!("\nFigure 7: Lumina's impact on message completion time (us)");
    let mut rows = Vec::new();
    for variant in VARIANTS {
        let mut row = vec![variant.to_string()];
        for size in SIZES_KB {
            row.push(format!("{:.2}", fig.mct(variant, size)));
        }
        rows.push(row);
    }
    print!(
        "{}",
        crate::common::render_table(&["variant", "1KB", "10KB", "100KB"], &rows)
    );
    for size in SIZES_KB {
        println!(
            "overhead vs l2-forward at {size:>3} KB: {:+.1}% (paper: 4.1-7.2%)",
            fig.overhead_pct(size)
        );
    }
}
