//! §6.2.3: the CX5↔E810 interoperability problem.
//!
//! Send traffic from an Intel E810 to an NVIDIA CX5, five 100 KB messages
//! per QP, sweeping the number of QPs. The E810 transmits `MigReq = 0`;
//! the CX5 pushes such packets through an APM slow path whose queue
//! overflows when many QPs start simultaneously — the paper observes ~500
//! RX discards at 16 QPs, timeouts on first messages, and a 130× MCT gap
//! between affected and unaffected messages. Rewriting `MigReq` to 1 at
//! the switch (the paper's confirmation experiment) makes the problem
//! vanish, as does a CX5→CX5 baseline.

use crate::common::run_yaml;
use serde::{Deserialize, Serialize};

/// One sweep cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Point {
    /// Scenario label.
    pub scenario: String,
    /// Number of QPs.
    pub qps: u32,
    /// RX discards at the responder NIC.
    pub responder_discards: u64,
    /// Retransmission timeouts at the requester.
    pub timeouts: u64,
    /// Mean MCT of messages that hit packet drops, µs.
    pub mct_affected_us: Option<f64>,
    /// Mean MCT of clean messages, µs.
    pub mct_clean_us: f64,
}

/// The experiment: three scenarios swept over QP counts.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Experiment {
    /// All points.
    pub points: Vec<Point>,
}

/// The paper's QP sweep.
pub const QP_COUNTS: [u32; 4] = [1, 8, 16, 32];

/// Scenario names.
pub const SCENARIOS: [&str; 3] = ["e810-to-cx5", "e810-to-cx5-migfix", "cx5-to-cx5"];

/// Run one cell.
pub fn measure(scenario: &str, qps: u32) -> Point {
    let (req_nic, rsp_nic, fix) = match scenario {
        "e810-to-cx5" => ("e810", "cx5", false),
        "e810-to-cx5-migfix" => ("e810", "cx5", true),
        "cx5-to-cx5" => ("cx5", "cx5", false),
        other => panic!("unknown scenario {other}"),
    };
    measure_raw(scenario, req_nic, rsp_nic, fix, qps)
}

/// Probe an arbitrary NIC pairing (used by the Table 2 detection suite).
pub fn measure_pair(req_nic: &str, rsp_nic: &str, qps: u32) -> Point {
    measure_raw(
        &format!("{req_nic}-to-{rsp_nic}"),
        req_nic,
        rsp_nic,
        false,
        qps,
    )
}

fn measure_raw(scenario: &str, req_nic: &str, rsp_nic: &str, fix: bool, qps: u32) -> Point {
    // The MigReq fix: rewrite every data packet of every connection.
    let mut events = String::new();
    if fix {
        for q in 1..=qps {
            events.push_str(&format!(
                "\n    - {{qpn: {q}, psn: 1, type: set-mig-1, iter: 1, every: 1}}"
            ));
        }
    }
    let yaml = format!(
        r#"
requester: {{ nic-type: {req_nic} }}
responder: {{ nic-type: {rsp_nic} }}
traffic:
  num-connections: {qps}
  rdma-verb: send
  num-msgs-per-qp: 5
  mtu: 1024
  message-size: 102400
  tx-depth: 1
  data-pkt-events:{ev}
network:
  horizon-ms: 60000
"#,
        ev = if events.is_empty() { " []" } else { &events },
    );
    let res = run_yaml(&yaml);
    assert!(res.traffic_completed(), "{scenario}/{qps}: incomplete");
    // Affected messages: those that needed recovery. Approximate from MCT
    // bimodality: anything ≥ 10× the minimum is "affected" (the paper
    // separates messages with and without packet drops).
    let mcts: Vec<f64> = res
        .requester_metrics
        .flows
        .values()
        .flat_map(|f| f.mcts.iter().map(|t| t.as_micros_f64()))
        .collect();
    let min = mcts.iter().cloned().fold(f64::INFINITY, f64::min);
    let (affected, clean): (Vec<f64>, Vec<f64>) =
        mcts.into_iter().partition(|&m| m >= 10.0 * min);
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    Point {
        scenario: scenario.into(),
        qps,
        responder_discards: res.responder_counters.rx_discards_phy,
        timeouts: res.requester_counters.local_ack_timeout_err,
        mct_affected_us: if affected.is_empty() {
            None
        } else {
            Some(avg(&affected))
        },
        mct_clean_us: avg(&clean),
    }
}

/// Run the full experiment.
pub fn run() -> Experiment {
    let mut exp = Experiment::default();
    for scenario in SCENARIOS {
        for qps in QP_COUNTS {
            exp.points.push(measure(scenario, qps));
        }
    }
    exp
}

/// Print it.
pub fn print(exp: &Experiment) {
    println!("\n§6.2.3: CX5↔E810 interoperability (Send, 5 × 100 KB per QP)");
    let rows: Vec<Vec<String>> = exp
        .points
        .iter()
        .map(|p| {
            vec![
                p.scenario.clone(),
                p.qps.to_string(),
                p.responder_discards.to_string(),
                p.timeouts.to_string(),
                p.mct_affected_us
                    .map(|v| format!("{v:.0}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.0}", p.mct_clean_us),
            ]
        })
        .collect();
    print!(
        "{}",
        crate::common::render_table(
            &[
                "scenario",
                "QPs",
                "rx_discards",
                "timeouts",
                "MCT affected (us)",
                "MCT clean (us)"
            ],
            &rows
        )
    );
}
