//! `bench-gate` — the committed performance trajectory.
//!
//! Measures the repo's five headline performance numbers:
//!
//! * `events_per_sec` — simulation events dispatched per wall-clock
//!   second on the `fig11_noisy_neighbor` preset (best of three runs);
//! * `ns_per_event`   — the same measurement, inverted;
//! * `copied_per_pkt` — bytes memcpy'd per captured packet, from the
//!   frame-plane ledger (deterministic);
//! * `fuzz_runs_per_sec` — genetic-campaign throughput, best worker
//!   count of the `fuzz_throughput` sweep;
//! * `ingest_bytes_per_sec` — offline pcap→conformance throughput: the
//!   fig11 trace exported as pcap and re-graded end to end (format parse,
//!   frame recovery, chunked reconstruction, discovery-mode oracle), best
//!   of three runs.
//!
//! A metric missing from the committed baseline (added after it was
//! written) is reported and skipped, not failed — regenerating the
//! baseline picks it up.
//!
//! Modes:
//!
//! ```text
//! bench-gate --write BENCH_2026-08-07.json   measure, write a baseline
//! bench-gate                                 measure, compare against the
//!                                            newest committed BENCH_*.json
//! ```
//!
//! The check fails (exit 1) when any metric regresses more than 20%
//! against the baseline: throughput metrics must not drop below 0.8×,
//! cost metrics must not rise above 1.2×. Exit 2 is a usage or I/O
//! problem, including a check run with no committed baseline.

use lumina_bench::fuzz_throughput;
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Metric names, their direction, and how to read them from a report.
/// `true` = higher is better (throughput), `false` = lower is better.
const METRICS: [(&str, bool); 6] = [
    ("events_per_sec", true),
    ("ns_per_event", false),
    ("copied_per_pkt", false),
    ("fuzz_runs_per_sec", true),
    ("ingest_bytes_per_sec", true),
    ("soak_events_per_sec", true),
];

/// Allowed regression: 20% against the committed baseline.
const TOLERANCE: f64 = 0.20;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fig11_cfg() -> Result<TestConfig, String> {
    let path = repo_root().join("configs/fig11_noisy_neighbor.yaml");
    let yaml = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    TestConfig::from_yaml(&yaml).map_err(|e| format!("{}: {e}", path.display()))
}

/// Run the measurements and return the flat metric map.
fn measure() -> Result<serde_json::Value, String> {
    let cfg = fig11_cfg()?;
    // Warm-up run, then best-of-three timed runs: the gate compares
    // wall-clock rates, so shave scheduler noise where it is cheap to.
    let warm = run_test(&cfg).map_err(|e| format!("fig11 run: {e}"))?;
    let packets = warm.trace.as_ref().map(|t| t.len() as u64).unwrap_or(0).max(1);
    let copied_per_pkt = warm.frame_stats.bytes_copied as f64 / packets as f64;
    let mut best_events_per_sec = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let res = run_test(&cfg).map_err(|e| format!("fig11 run: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();
        if wall > 0.0 {
            best_events_per_sec = best_events_per_sec.max(res.engine_stats.events as f64 / wall);
        }
    }
    if best_events_per_sec <= 0.0 {
        return Err("fig11 run finished in zero wall time".into());
    }

    let sweep = fuzz_throughput::run_with(16);
    let fuzz_runs_per_sec = sweep
        .rows
        .iter()
        .map(|r| r.runs_per_sec)
        .fold(0.0f64, f64::max);
    if sweep.rows.iter().any(|r| !r.identical_outcome) {
        return Err("fuzz sweep outcomes diverged across worker counts".into());
    }

    // Offline ingestion throughput: the warm run's trace as pcap, graded
    // end to end through the streaming pipeline, best of three.
    let trace = warm
        .trace
        .as_ref()
        .ok_or_else(|| "fig11 run produced no trace".to_string())?;
    let mut pcap = Vec::new();
    trace
        .write_pcap(&mut pcap)
        .map_err(|e| format!("pcap export: {e}"))?;
    let params = lumina_core::IngestParams {
        context: Some(cfg.clone()),
        progress: false,
        ..lumina_core::IngestParams::default()
    };
    let mut best_ingest_bytes_per_sec = 0.0f64;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = lumina_core::ingest_reader(std::io::Cursor::new(&pcap[..]), "fig11", &params)
            .map_err(|e| format!("fig11 re-ingest: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();
        if out.records != trace.len() as u64 {
            return Err("fig11 re-ingest lost records".into());
        }
        if wall > 0.0 {
            best_ingest_bytes_per_sec = best_ingest_bytes_per_sec.max(pcap.len() as f64 / wall);
        }
    }
    if best_ingest_bytes_per_sec <= 0.0 {
        return Err("fig11 re-ingest finished in zero wall time".into());
    }

    // Chaos-soak throughput: the fig11 preset under generated chaos
    // schedules, fanned out over worker threads. The report's event total
    // is deterministic, so wall time is the only noise; best of two.
    let soak_params = lumina_core::soak::SoakParams {
        scenarios_per_preset: 2,
        seed: 1,
        workers: 4,
    };
    let presets = vec![("fig11_noisy_neighbor".to_string(), cfg.clone())];
    let mut best_soak_events_per_sec = 0.0f64;
    for _ in 0..2 {
        let t0 = Instant::now();
        let report = lumina_core::soak::sweep(&presets, &soak_params)
            .map_err(|e| format!("soak sweep: {e}"))?;
        let wall = t0.elapsed().as_secs_f64();
        if report.errors > 0 {
            return Err("soak sweep scenarios errored".into());
        }
        if wall > 0.0 {
            best_soak_events_per_sec = best_soak_events_per_sec.max(report.events as f64 / wall);
        }
    }
    if best_soak_events_per_sec <= 0.0 {
        return Err("soak sweep finished in zero wall time".into());
    }

    Ok(serde_json::json!({
        "schema": 1,
        "preset": "fig11_noisy_neighbor",
        "events_per_sec": (best_events_per_sec),
        "ns_per_event": (1e9 / best_events_per_sec),
        "copied_per_pkt": (copied_per_pkt),
        "fuzz_runs_per_sec": (fuzz_runs_per_sec),
        "ingest_bytes_per_sec": (best_ingest_bytes_per_sec),
        "soak_events_per_sec": (best_soak_events_per_sec),
    }))
}

/// Newest committed baseline: lexicographically last `BENCH_*.json` in
/// the repo root (the names embed ISO dates, so lexicographic = newest).
fn newest_baseline() -> Result<PathBuf, String> {
    let root = repo_root();
    let mut candidates: Vec<PathBuf> = std::fs::read_dir(&root)
        .map_err(|e| format!("{}: {e}", root.display()))?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    candidates.sort();
    candidates
        .pop()
        .ok_or_else(|| "no committed BENCH_*.json baseline; create one with --write".into())
}

fn metric(v: &serde_json::Value, name: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(|m| m.as_f64())
        .ok_or_else(|| format!("baseline is missing metric {name:?}"))
}

fn check(current: &serde_json::Value) -> Result<ExitCode, String> {
    let path = newest_baseline()?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    let baseline: serde_json::Value =
        serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    println!("bench-gate: baseline {}", path.display());

    let mut failed = false;
    for (name, higher_better) in METRICS {
        let Ok(base) = metric(&baseline, name) else {
            println!(
                "  {name:<18} not in baseline; skipped (regenerate with --write to gate it)"
            );
            continue;
        };
        let now = metric(current, name)?;
        let (bound, ok) = if higher_better {
            let bound = base * (1.0 - TOLERANCE);
            (bound, now >= bound)
        } else {
            let bound = base * (1.0 + TOLERANCE);
            (bound, now <= bound)
        };
        println!(
            "  {:<18} baseline {:>14.2}  now {:>14.2}  bound {:>14.2}  {}",
            name,
            base,
            now,
            bound,
            if ok { "ok" } else { "REGRESSION" }
        );
        failed |= !ok;
    }
    if failed {
        eprintln!(
            "bench-gate: performance regressed >{:.0}% against {}",
            TOLERANCE * 100.0,
            path.display()
        );
        Ok(ExitCode::from(1))
    } else {
        println!("bench-gate: within {:.0}% of the committed trajectory", TOLERANCE * 100.0);
        Ok(ExitCode::SUCCESS)
    }
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let current = measure()?;
    match args.first().map(String::as_str) {
        Some("--write") => {
            let name = args
                .get(1)
                .ok_or_else(|| "usage: bench-gate [--write BENCH_<date>.json]".to_string())?;
            let path = repo_root().join(name);
            let mut text = serde_json::to_string_pretty(&current)
                .map_err(|e| format!("serialize: {e}"))?;
            text.push('\n');
            std::fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
            println!("bench-gate: wrote {}", path.display());
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown argument {other:?}; usage: bench-gate [--write BENCH_<date>.json]")),
        None => check(&current),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("bench-gate: {e}");
            ExitCode::from(2)
        }
    }
}
