//! `lumina-experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! lumina-experiments all            # everything (slow)
//! lumina-experiments fig08          # one experiment
//! lumina-experiments fig10 --json   # machine-readable output
//! ```

use lumina_bench::*;

const IDS: [&str; 14] = [
    "fig03", "fig07", "fig08", "fig09", "fig10", "fig11", "table2", "interop", "cnp",
    "adaptive", "sec34", "ablations", "fuzz", "hotpath",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let quick = args.iter().any(|a| a == "--quick");
    let wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    if wanted.is_empty() {
        eprintln!("usage: lumina-experiments <id>... [--json] [--quick]");
        eprintln!("ids: all sec5 {}", IDS.join(" "));
        std::process::exit(2);
    }
    let run_all = wanted.contains(&"all");
    let want = |id: &str| run_all || wanted.contains(&id);

    let mut out = serde_json::Map::new();
    if want("fig03") {
        let f = fig03_iter::run();
        if json {
            out.insert("fig03", serde_json::to_value(&f).unwrap());
        } else {
            fig03_iter::print(&f);
        }
    }
    if want("fig07") {
        let f = fig07_overhead::run_with_msgs(if quick { 100 } else { 1000 });
        if json {
            out.insert("fig07", serde_json::to_value(&f).unwrap());
        } else {
            fig07_overhead::print(&f);
        }
    }
    if want("fig08") || want("fig09") {
        let f = fig08_09_retrans::run();
        if json {
            out.insert("fig08_09", serde_json::to_value(&f).unwrap());
        } else {
            fig08_09_retrans::print(&f);
        }
    }
    if want("fig10") {
        let f = fig10_ets::run_on("cx6", if quick { 5 } else { 20 });
        if json {
            out.insert("fig10", serde_json::to_value(&f).unwrap());
        } else {
            fig10_ets::print(&f);
            let ablation = fig10_ets::run_on("cx5", if quick { 5 } else { 20 });
            println!("\nablation — same settings on a work-conserving model (CX5):");
            fig10_ets::print(&ablation);
        }
    }
    if want("fig11") {
        let f = if quick {
            fig11_noisy::run_on("cx4", 24, 3)
        } else {
            fig11_noisy::run()
        };
        if json {
            out.insert("fig11", serde_json::to_value(&f).unwrap());
        } else {
            fig11_noisy::print(&f);
        }
    }
    if want("table2") {
        let t = table2_bugs::run();
        if json {
            out.insert("table2", serde_json::to_value(&t).unwrap());
        } else {
            table2_bugs::print(&t);
        }
    }
    if want("interop") {
        let e = interop::run();
        if json {
            out.insert("interop", serde_json::to_value(&e).unwrap());
        } else {
            interop::print(&e);
        }
    }
    if want("cnp") {
        let e = cnp_behavior::run();
        if json {
            out.insert("cnp", serde_json::to_value(&e).unwrap());
        } else {
            cnp_behavior::print(&e);
        }
    }
    if want("adaptive") {
        let e = adaptive_retrans::run();
        if json {
            out.insert("adaptive", serde_json::to_value(&e).unwrap());
        } else {
            adaptive_retrans::print(&e);
        }
    }
    if want("sec34") {
        let e = sec34_dumper::run();
        if json {
            out.insert("sec34", serde_json::to_value(&e).unwrap());
        } else {
            sec34_dumper::print(&e);
        }
    }
    if want("ablations") {
        if json {
            let fix = ablations::ets_fix(5);
            out.insert("ablation_ets_fix", serde_json::to_value(&fix).unwrap());
            out.insert(
                "ablation_contexts",
                serde_json::to_value(ablations::context_sweep(&[4, 8, 10, 16, 32])).unwrap(),
            );
            out.insert(
                "ablation_apm",
                serde_json::to_value(ablations::apm_sweep(&[128, 512, 1024, 2048, 4096]))
                    .unwrap(),
            );
        } else {
            ablations::print_all();
        }
    }
    if want("fuzz") {
        let f = fuzz_throughput::run_with(if quick { 8 } else { 32 });
        if json {
            out.insert("fuzz", serde_json::to_value(&f).unwrap());
        } else {
            fuzz_throughput::print(&f);
        }
    }
    if want("hotpath") {
        let h = hotpath::run();
        if json {
            out.insert("hotpath", serde_json::to_value(&h).unwrap());
        } else {
            hotpath::print(&h);
        }
    }
    if want("sec5") {
        let r = sec5_switch::run();
        if json {
            out.insert("sec5", serde_json::to_value(&r).unwrap());
        } else {
            sec5_switch::print(&r);
        }
    }
    if json {
        println!("{}", serde_json::to_string_pretty(&out).unwrap());
    }
}
