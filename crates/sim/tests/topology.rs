//! Engine integration tests: multi-hop forwarding, bottleneck queuing,
//! and deterministic replay on a small topology.

use lumina_packet::builder::DataPacketBuilder;
use lumina_packet::opcode::Opcode;
use lumina_sim::testutil::{recording, Collector, Recording, Script};
use lumina_sim::{Bandwidth, Engine, Frame, Node, NodeCtx, PortId, SimTime};

/// Forwards every frame from port 0 to port 1 and vice versa after a fixed
/// processing delay.
struct Forwarder {
    delay: SimTime,
}

impl Node for Forwarder {
    fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut NodeCtx<'_>) {
        let out = PortId(1 - port.0);
        ctx.send_after(out, frame, self.delay);
    }
    fn on_timer(&mut self, _: u64, _: &mut NodeCtx<'_>) {}
    fn name(&self) -> &str {
        "forwarder"
    }
}

fn frame(n: usize) -> Frame {
    DataPacketBuilder::new()
        .opcode(Opcode::SendOnly)
        .psn(n as u32)
        .payload_len(1000)
        .build()
        .emit()
}

/// source → fwd1 → fwd2 → sink, with a bottleneck middle link.
fn chain(bottleneck: Bandwidth, n_frames: usize) -> (Engine, Recording) {
    let mut eng = Engine::new(3);
    let plan: Vec<(SimTime, PortId, Frame)> = (0..n_frames)
        .map(|i| (SimTime::ZERO, PortId(0), frame(i)))
        .collect();
    let src = eng.add_node(Box::new(Script::new(plan)));
    let f1 = eng.add_node(Box::new(Forwarder {
        delay: SimTime::from_nanos(300),
    }));
    let f2 = eng.add_node(Box::new(Forwarder {
        delay: SimTime::from_nanos(300),
    }));
    let rx = recording();
    let sink = eng.add_node(Box::new(Collector::new(rx.clone())));
    let fast = Bandwidth::gbps(100);
    let prop = SimTime::from_nanos(500);
    eng.connect(src, PortId(0), f1, PortId(0), fast, prop);
    eng.connect(f1, PortId(1), f2, PortId(0), bottleneck, prop);
    eng.connect(f2, PortId(1), sink, PortId(0), fast, prop);
    eng.schedule_timer(src, SimTime::ZERO, Script::KICKOFF);
    (eng, rx)
}

#[test]
fn frames_traverse_chain_in_order() {
    let (mut eng, rx) = chain(Bandwidth::gbps(100), 20);
    let out = eng.run(None);
    assert!(out.is_quiescent());
    let got = rx.borrow();
    assert_eq!(got.len(), 20);
    let psns: Vec<u32> = got
        .iter()
        .map(|(_, _, f)| lumina_packet::RoceFrame::parse(f).unwrap().bth.psn)
        .collect();
    assert_eq!(psns, (0..20).collect::<Vec<u32>>());
}

#[test]
fn bottleneck_paces_delivery_to_its_rate() {
    let n = 200;
    let (mut eng, rx) = chain(Bandwidth::gbps(10), n);
    eng.run(None);
    let got = rx.borrow();
    assert_eq!(got.len(), n);
    // Steady-state spacing at the sink equals the bottleneck
    // serialization time of one frame.
    let line_bytes = lumina_packet::frame::line_occupancy_of(got[0].2.len());
    let expect_gap = Bandwidth::gbps(10).serialization_time(line_bytes);
    let gaps: Vec<u64> = got
        .windows(2)
        .map(|w| w[1].0.saturating_since(w[0].0).as_nanos())
        .collect();
    // Skip the ramp-up; check the tail half.
    for g in &gaps[gaps.len() / 2..] {
        assert_eq!(*g, expect_gap.as_nanos(), "steady-state spacing");
    }
    // Effective goodput ≈ 10 Gbps of line occupancy.
    let span = got[n - 1].0.saturating_since(got[0].0);
    let gbps = (n - 1) as f64 * line_bytes as f64 * 8.0 / span.as_nanos() as f64;
    assert!((gbps - 10.0).abs() < 0.2, "bottleneck goodput {gbps}");
}

#[test]
fn engine_stats_account_all_hops() {
    let n = 10;
    let (mut eng, _rx) = chain(Bandwidth::gbps(100), n);
    eng.run(None);
    // Each frame is delivered 3 times (f1, f2, sink).
    assert_eq!(eng.stats().frames_delivered, 3 * n as u64);
}

#[test]
fn chain_is_deterministic() {
    let run = || {
        let (mut eng, rx) = chain(Bandwidth::gbps(25), 50);
        eng.run(None);
        let v: Vec<(u64, u32)> = rx
            .borrow()
            .iter()
            .map(|(t, _, f)| {
                (
                    t.as_nanos(),
                    lumina_packet::RoceFrame::parse(f).unwrap().bth.psn,
                )
            })
            .collect();
        v
    };
    assert_eq!(run(), run());
}

#[test]
fn link_state_observable_after_run() {
    let (mut eng, _rx) = chain(Bandwidth::gbps(10), 50);
    eng.run(None);
    // The bottleneck link (node 1, port 1) carried all 50 frames and built
    // real backlog.
    let ls = eng
        .link_state(lumina_sim::NodeId(1), PortId(1))
        .expect("link exists");
    assert_eq!(ls.frames, 50);
    assert!(ls.max_backlog > SimTime::from_micros(1));
}
