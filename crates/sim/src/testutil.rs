//! Simple nodes for driving and observing the network in tests: a
//! [`Script`] node that emits pre-planned frames at pre-planned times, and
//! a [`Collector`] node that records everything it receives.
//!
//! These live in the library (not `#[cfg(test)]`) because downstream
//! crates' integration tests use them too.

use crate::engine::{NodeCtx, PortId};
use crate::time::SimTime;
use crate::Node;
use bytes::Bytes;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared recording of received frames.
pub type Recording = Rc<RefCell<Vec<(SimTime, PortId, Bytes)>>>;

/// Create an empty recording.
pub fn recording() -> Recording {
    Rc::new(RefCell::new(Vec::new()))
}

/// Records every frame it receives, with arrival time and port.
pub struct Collector {
    /// Shared handle to the recorded frames.
    pub frames: Recording,
}

impl Collector {
    /// Create a collector writing into `frames`.
    pub fn new(frames: Recording) -> Collector {
        Collector { frames }
    }
}

impl Node for Collector {
    fn on_frame(&mut self, port: PortId, frame: Bytes, ctx: &mut NodeCtx<'_>) {
        self.frames.borrow_mut().push((ctx.now(), port, frame));
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_>) {}
    fn name(&self) -> &str {
        "collector"
    }
}

/// Emits a fixed schedule of frames. Arm with `schedule_kickoff` after
/// adding to the engine.
pub struct Script {
    /// `(emit time, port, frame)` entries; emitted in order of the list.
    pub plan: Vec<(SimTime, PortId, Bytes)>,
}

impl Script {
    /// Plan token used by [`Script::kickoff`].
    pub const KICKOFF: u64 = u64::MAX;

    /// Create a script node.
    pub fn new(plan: Vec<(SimTime, PortId, Bytes)>) -> Script {
        Script { plan }
    }
}

impl Node for Script {
    fn on_frame(&mut self, _port: PortId, _frame: Bytes, _ctx: &mut NodeCtx<'_>) {}
    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_>) {
        if token == Self::KICKOFF {
            for (i, (at, _, _)) in self.plan.iter().enumerate() {
                ctx.set_timer_at(*at, i as u64);
            }
        } else if let Some((_, port, frame)) = self.plan.get(token as usize) {
            ctx.send(*port, frame.clone());
        }
    }
    fn name(&self) -> &str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::time::Bandwidth;

    #[test]
    fn script_delivers_to_collector_in_order() {
        let mut eng = Engine::new(1);
        let frames: Vec<Bytes> = (0..3u8).map(|i| Bytes::from(vec![i; 64])).collect();
        let plan = frames
            .iter()
            .enumerate()
            .map(|(i, f)| (SimTime::from_micros(i as u64), PortId(0), f.clone()))
            .collect();
        let script = eng.add_node(Box::new(Script::new(plan)));
        let rec = recording();
        let coll = eng.add_node(Box::new(Collector::new(rec.clone())));
        eng.connect(
            script,
            PortId(0),
            coll,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(100),
        );
        eng.schedule_timer(script, SimTime::ZERO, Script::KICKOFF);
        eng.run(None);
        let got = rec.borrow();
        assert_eq!(got.len(), 3);
        for (i, (t, _, f)) in got.iter().enumerate() {
            assert_eq!(f[0], i as u8);
            assert!(*t >= SimTime::from_micros(i as u64));
        }
    }
}
