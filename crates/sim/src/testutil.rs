//! Simple nodes for driving and observing the network in tests: a
//! [`Script`] node that emits pre-planned frames at pre-planned times, and
//! a [`Collector`] node that records everything it receives.
//!
//! These live in the library (not `#[cfg(test)]`) because downstream
//! crates' integration tests use them too.

use crate::engine::{NodeCtx, PortId};
use crate::time::SimTime;
use crate::Node;
use lumina_packet::Frame;
use lumina_telemetry::Telemetry;
use std::cell::RefCell;
use std::rc::Rc;

/// Compare two telemetry journals line by line (JSONL form).
///
/// Returns `None` when the journals are byte-identical; otherwise the
/// first differing line — `(line number, line from a, line from b)`, with
/// an empty string standing in for a journal that ended early. Tests use
/// this instead of a plain `assert_eq!` so a determinism regression
/// reports the first divergent event rather than two multi-kilobyte blobs.
pub fn journal_diff(a: &Telemetry, b: &Telemetry) -> Option<(usize, String, String)> {
    let (ja, jb) = (a.journal_jsonl(), b.journal_jsonl());
    if ja == jb {
        return None;
    }
    let (mut la, mut lb) = (ja.lines(), jb.lines());
    let mut n = 1;
    loop {
        match (la.next(), lb.next()) {
            (None, None) => return Some((n, String::new(), String::new())),
            (x, y) if x != y => {
                return Some((
                    n,
                    x.unwrap_or_default().to_string(),
                    y.unwrap_or_default().to_string(),
                ))
            }
            _ => n += 1,
        }
    }
}

/// Shared recording of received frames.
pub type Recording = Rc<RefCell<Vec<(SimTime, PortId, Frame)>>>;

/// Create an empty recording.
pub fn recording() -> Recording {
    Rc::new(RefCell::new(Vec::new()))
}

/// Records every frame it receives, with arrival time and port.
pub struct Collector {
    /// Shared handle to the recorded frames.
    pub frames: Recording,
}

impl Collector {
    /// Create a collector writing into `frames`.
    pub fn new(frames: Recording) -> Collector {
        Collector { frames }
    }
}

impl Node for Collector {
    fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut NodeCtx<'_>) {
        self.frames.borrow_mut().push((ctx.now(), port, frame));
    }
    fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_>) {}
    fn name(&self) -> &str {
        "collector"
    }
}

/// Emits a fixed schedule of frames. Arm with `schedule_kickoff` after
/// adding to the engine.
pub struct Script {
    /// `(emit time, port, frame)` entries; emitted in order of the list.
    pub plan: Vec<(SimTime, PortId, Frame)>,
}

impl Script {
    /// Plan token used by [`Script::kickoff`].
    pub const KICKOFF: u64 = u64::MAX;

    /// Create a script node.
    pub fn new(plan: Vec<(SimTime, PortId, Frame)>) -> Script {
        Script { plan }
    }
}

impl Node for Script {
    fn on_frame(&mut self, _port: PortId, _frame: Frame, _ctx: &mut NodeCtx<'_>) {}
    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_>) {
        if token == Self::KICKOFF {
            for (i, (at, _, _)) in self.plan.iter().enumerate() {
                ctx.set_timer_at(*at, i as u64);
            }
        } else if let Some((_, port, frame)) = self.plan.get(token as usize) {
            ctx.send(*port, frame.clone());
        }
    }
    fn name(&self) -> &str {
        "script"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::time::Bandwidth;
    use lumina_telemetry::tev;

    #[test]
    fn script_delivers_to_collector_in_order() {
        let mut eng = Engine::new(1);
        let frames: Vec<Frame> = (0..3u8).map(|i| Frame::from_vec(vec![i; 64])).collect();
        let plan = frames
            .iter()
            .enumerate()
            .map(|(i, f)| (SimTime::from_micros(i as u64), PortId(0), f.clone()))
            .collect();
        let script = eng.add_node(Box::new(Script::new(plan)));
        let rec = recording();
        let coll = eng.add_node(Box::new(Collector::new(rec.clone())));
        eng.connect(
            script,
            PortId(0),
            coll,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(100),
        );
        eng.schedule_timer(script, SimTime::ZERO, Script::KICKOFF);
        eng.run(None);
        let got = rec.borrow();
        assert_eq!(got.len(), 3);
        for (i, (t, _, f)) in got.iter().enumerate() {
            assert_eq!(f[0], i as u8);
            assert!(*t >= SimTime::from_micros(i as u64));
        }
    }

    /// Journals one event per received frame, with an rng-derived attribute
    /// so the test also covers the engine's deterministic per-node RNG.
    struct Chatty;

    impl Node for Chatty {
        fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut NodeCtx<'_>) {
            let jitter = ctx.rng().below(1000);
            tev!(
                ctx.telemetry(),
                ctx.now().as_nanos(),
                ctx.telemetry_node(),
                "test",
                "frame.rx",
                port = port.0,
                len = frame.len(),
                jitter = jitter,
            );
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_>) {}
        fn name(&self) -> &str {
            "chatty"
        }
    }

    fn chatty_run(seed: u64) -> Telemetry {
        let tel = Telemetry::enabled();
        let mut eng = Engine::new(seed);
        eng.set_telemetry(tel.clone());
        let plan = (0..50u64)
            .map(|i| {
                (
                    SimTime::from_nanos(i * 137),
                    PortId(0),
                    Frame::from_vec(vec![0u8; 64 + (i as usize % 7) * 32]),
                )
            })
            .collect();
        let script = eng.add_node(Box::new(Script::new(plan)));
        let chatty = eng.add_node(Box::new(Chatty));
        eng.connect(
            script,
            PortId(0),
            chatty,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(100),
        );
        eng.schedule_timer(script, SimTime::ZERO, Script::KICKOFF);
        eng.run(None);
        tel
    }

    #[test]
    fn same_seed_runs_produce_identical_journals() {
        let a = chatty_run(7);
        let b = chatty_run(7);
        assert!(a.journal_len() > 0, "test must journal something");
        if let Some((n, la, lb)) = journal_diff(&a, &b) {
            panic!("journals diverge at line {n}:\n  a: {la}\n  b: {lb}");
        }
        assert_eq!(a.journal_jsonl(), b.journal_jsonl());
    }

    #[test]
    fn journal_diff_reports_first_divergence() {
        let a = chatty_run(7);
        let b = chatty_run(8); // different seed → different rng attrs
        let (n, la, lb) = journal_diff(&a, &b).expect("seeds must differ");
        assert_eq!(n, 1, "first event already differs through rng jitter");
        assert_ne!(la, lb);
    }
}
