//! Deterministic discrete-event network simulation engine.
//!
//! This crate is the substrate that replaces Lumina's physical testbed: two
//! traffic-generation hosts, a Tofino switch, and a pool of traffic dumpers
//! become [`Node`] implementations wired together by [`Link`]s with
//! bandwidth, propagation delay and serialization queuing.
//!
//! Design choices (following the smoltcp school of network code):
//!
//! * **Deterministic.** A single event queue ordered by `(time, seq)`;
//!   ties broken by insertion order; all randomness comes from one seeded
//!   PRNG. Running the same configuration twice produces byte-identical
//!   traces — exactly the reproducibility Lumina demands of its tests.
//! * **Synchronous.** No async runtime: simulation is CPU-bound
//!   deterministic work, the case the Tokio guide itself excludes.
//! * **Bytes on the wire, shared not copied.** Nodes exchange serialized
//!   frames ([`lumina_packet::Frame`]): every component sees real packet
//!   bytes the way the hardware pipeline does, but the buffer is
//!   immutable and reference-counted — hops, mirrors and capture rings
//!   pass the same allocation, and in-flight mutation (ECN marking,
//!   corruption) is explicit copy-on-write via `Frame::make_mut`.
//! * **Calendar-queue scheduling.** The event queue is a hierarchical
//!   timer wheel ([`wheel::TimerWheel`]) keyed on [`SimTime`] with a
//!   monotonic sequence tie-break, so pop order is identical to the
//!   comparison-heap it replaced — byte for byte, golden for golden.

pub mod engine;
pub mod faults;
pub mod link;
pub mod pcap;
pub mod rng;
pub mod testutil;
pub mod time;
pub mod wheel;

pub use engine::{Engine, EngineStats, FrameStats, NodeCtx, NodeId, PortId, RunOutcome};
pub use faults::{
    BurstRegime, ChaosFate, ChaosPlane, ChaosStats, ChaosWindow, FaultPlane, FaultStats,
    FreezeWindow, LinkChaos, MirrorFaults,
};
pub use link::Link;
pub use rng::SimRng;
pub use time::{Bandwidth, SimTime};

// Re-export the frame handle nodes exchange, so node implementations can
// name it without depending on lumina-packet directly.
pub use lumina_packet::Frame;

// Re-export the telemetry layer so embedders (orchestrator, node models)
// reach the sink types through the same crate that hands them a `NodeCtx`.
pub use lumina_telemetry as telemetry;
pub use lumina_telemetry::{MetricSet, Telemetry};

/// A simulated device attached to the network.
///
/// Implementations receive frames and timer callbacks and react by emitting
/// frames and arming timers through the [`NodeCtx`] passed in.
/// `Node: Any` enables recovering the concrete type after a run via dyn
/// upcasting: `let any: Box<dyn Any> = engine.remove_node(id);` then
/// `any.downcast::<HostNode>()` — how the orchestrator reads counters and
/// captures back out of the finished simulation.
pub trait Node: std::any::Any {

    /// A frame has fully arrived on `port` (last bit received). The node
    /// receives the shared handle by value; keeping it (e.g. in a capture
    /// ring) is a clone of the handle, never of the bytes.
    fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut NodeCtx<'_>);

    /// A timer armed via [`NodeCtx::set_timer`] has fired.
    fn on_timer(&mut self, token: u64, ctx: &mut NodeCtx<'_>);

    /// Called once when the engine finishes, at the final simulation time.
    /// Nodes can flush buffered state (e.g. the dumper writing its trace).
    fn on_finish(&mut self, _ctx: &mut NodeCtx<'_>) {}

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str {
        "node"
    }
}
