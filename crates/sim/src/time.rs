//! Simulated time and bandwidth.
//!
//! The clock is a nanosecond counter — the same resolution as the hardware
//! timestamps the Tofino embeds into mirrored packets (§3.4 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in nanoseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since time zero, as a float (for reporting).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since time zero, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since time zero, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.6}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// Link or port bandwidth in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Construct from gigabits per second.
    pub const fn gbps(g: u64) -> Bandwidth {
        Bandwidth(g * 1_000_000_000)
    }

    /// Construct from megabits per second.
    pub const fn mbps(m: u64) -> Bandwidth {
        Bandwidth(m * 1_000_000)
    }

    /// Bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Time to serialize `bytes` onto this link (rounded up to whole ns).
    pub fn serialization_time(self, bytes: usize) -> SimTime {
        debug_assert!(self.0 > 0, "zero bandwidth");
        let bits = bytes as u128 * 8;
        let ns = (bits * 1_000_000_000).div_ceil(self.0 as u128);
        SimTime(ns as u64)
    }

    /// Bytes transferable in `dur` at this bandwidth (rounded down).
    pub fn bytes_in(self, dur: SimTime) -> u64 {
        ((self.0 as u128 * dur.0 as u128) / 8 / 1_000_000_000) as u64
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{}Gbps", self.0 / 1_000_000_000)
        } else {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(5) + SimTime::from_nanos(500);
        assert_eq!(t.as_nanos(), 5_500);
        assert_eq!((t - SimTime::from_nanos(500)).as_nanos(), 5_000);
        assert_eq!(
            SimTime::from_nanos(3).saturating_since(SimTime::from_nanos(10)),
            SimTime::ZERO
        );
    }

    #[test]
    fn serialization_time_100g() {
        // 1250 bytes at 100 Gbps = 10000 bits / 100 bits-per-ns = 100 ns.
        assert_eq!(
            Bandwidth::gbps(100).serialization_time(1250),
            SimTime::from_nanos(100)
        );
        // 1 byte rounds up to 1 ns at 100 Gbps (0.08 ns true).
        assert_eq!(
            Bandwidth::gbps(100).serialization_time(1),
            SimTime::from_nanos(1)
        );
    }

    #[test]
    fn serialization_time_40g() {
        // 1000 bytes at 40 Gbps = 8000 bits / 40 bits-per-ns = 200 ns.
        assert_eq!(
            Bandwidth::gbps(40).serialization_time(1000),
            SimTime::from_nanos(200)
        );
    }

    #[test]
    fn bytes_in_inverts_serialization() {
        let bw = Bandwidth::gbps(100);
        let t = bw.serialization_time(9000);
        assert_eq!(bw.bytes_in(t), 9000);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimTime::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000000s");
        assert_eq!(Bandwidth::gbps(100).to_string(), "100Gbps");
        assert_eq!(Bandwidth::mbps(250).to_string(), "250Mbps");
    }
}
