//! Seeded deterministic randomness.
//!
//! All randomness in a simulation — QPN/PSN generation (which the real
//! RNICs also randomize at runtime, §3.2), the switch's UDP-port scrambling
//! for RSS, and the fuzzer's mutations — flows from one [`SimRng`] seeded by
//! the test configuration, so a test re-run with the same seed reproduces
//! the identical packet trace.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic PRNG handle.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Create from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, e.g. one per node, so adding
    /// draws in one node does not perturb another node's sequence.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from_u64(base ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.inner.gen_range(0..bound)
    }

    /// Uniform value in the inclusive range.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A random 24-bit value (QPN/PSN space).
    pub fn bits24(&mut self) -> u32 {
        self.inner.gen_range(0..(1u32 << 24))
    }

    /// A random u16 (UDP port scrambling).
    pub fn port(&mut self) -> u16 {
        self.inner.gen()
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Pick an index into a slice of length `len`.
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0);
        self.inner.gen_range(0..len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from_u64(42);
        let mut parent2 = SimRng::seed_from_u64(42);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        assert_eq!(c1.bits24(), c2.bits24());
        // Different salts give different streams.
        let mut parent3 = SimRng::seed_from_u64(42);
        let mut c3 = parent3.fork(6);
        let xs: Vec<u32> = (0..8).map(|_| c1.bits24()).collect();
        let ys: Vec<u32> = (0..8).map(|_| c3.bits24()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn ranges_respected() {
        let mut r = SimRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.range_inclusive(10, 20);
            assert!((10..=20).contains(&v));
            assert!(r.bits24() < (1 << 24));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
