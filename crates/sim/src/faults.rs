//! Deterministic infrastructure fault injection.
//!
//! Lumina's §3.5 integrity check exists because the *testbed itself* can
//! fail — mirror copies are dropped when dumpers overload, capture hosts
//! stall, bits rot on the way to disk. This module injects those failures
//! on purpose, so the degraded-trace pipeline can be exercised instead of
//! merely survived: the [`FaultPlane`] sits inside the [`Engine`]
//! (`Engine::set_fault_plane`) and intercepts two spots of the event loop:
//!
//! * **Marked links** (the switch→dumper mirror paths) may drop or
//!   duplicate a frame per transmit, per [`MirrorFaults`] probabilities.
//! * **Frozen nodes** (mid-run freeze/restart windows) lose arriving
//!   frames and have their timers deferred to the thaw instant.
//!
//! All randomness comes from the plane's own [`SimRng`], seeded
//! independently of the engine's — a run with a fault plane attached
//! consumes *zero* draws from the engine stream on unmarked links, so the
//! simulated workload itself is byte-identical with and without faults;
//! only the infrastructure behavior changes. Same seed, same fault
//! schedule, bit for bit.
//!
//! Dumper-local faults (core stalls, capture bit-rot) live with the dumper
//! model in `lumina-dumper`; this module only owns what the engine must
//! arbitrate.
//!
//! [`Engine`]: crate::Engine

use crate::engine::{NodeId, PortId};
use crate::rng::SimRng;
use crate::time::SimTime;
use lumina_telemetry::MetricSet;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Salt folded into the fault seed so a plane seeded with the campaign
/// seed still draws a stream unrelated to the engine's.
const FAULT_SEED_SALT: u64 = 0xfa17_ab1e_0bad_cafe;

/// Loss/duplication probabilities applied per transmit on marked links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MirrorFaults {
    /// Probability a mirror copy is silently dropped in flight.
    pub loss_prob: f64,
    /// Probability a mirror copy is delivered twice (serialized back to
    /// back on the link, like a flapping port replaying its FIFO).
    pub dup_prob: f64,
}

/// A mid-run node outage: events in `[from, until)` are intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreezeWindow {
    /// The frozen node.
    pub node: NodeId,
    /// First frozen instant (inclusive).
    pub from: SimTime,
    /// Thaw instant (exclusive) — deferred timers fire here.
    pub until: SimTime,
}

/// What the plane decided for one transmit on a marked link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitFate {
    /// Deliver normally.
    Deliver,
    /// Drop the frame silently.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
}

/// Counters the plane accumulates during a run. Recorded into telemetry
/// (kind `faults`) only when a plane is attached, so fault-free runs keep
/// their snapshots — and golden reports — unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Mirror copies dropped on marked links.
    pub mirror_copies_dropped: u64,
    /// Mirror copies delivered twice on marked links.
    pub mirror_copies_duplicated: u64,
    /// Frames lost because their destination node was frozen.
    pub frames_dropped_frozen: u64,
    /// Timers deferred to a freeze window's thaw instant.
    pub timers_deferred: u64,
}

impl MetricSet for FaultStats {
    fn metric_kind(&self) -> &'static str {
        "faults"
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("FaultStats serializes")
    }
}

/// The seeded fault injector the engine consults. Build one, mark the
/// mirror links and freeze windows, then hand it to
/// [`Engine::set_fault_plane`](crate::Engine::set_fault_plane).
#[derive(Debug, Clone)]
pub struct FaultPlane {
    rng: SimRng,
    mirror: MirrorFaults,
    /// Egress `(node, port)` keys subject to [`MirrorFaults`].
    marked_links: HashSet<(NodeId, PortId)>,
    freezes: Vec<FreezeWindow>,
    /// Run counters (engine-owned faults only; dumper-local fault counts
    /// live in the dumper's capture state).
    pub stats: FaultStats,
}

impl FaultPlane {
    /// Create a plane with its own RNG stream derived from `seed`.
    pub fn new(seed: u64, mirror: MirrorFaults) -> FaultPlane {
        FaultPlane {
            rng: SimRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            mirror,
            marked_links: HashSet::new(),
            freezes: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Fork a child RNG for a node-local fault injector (e.g. one per
    /// dumper) without perturbing the plane's own stream ordering across
    /// node counts: the child is derived from the plane seed, not drawn
    /// from the plane stream.
    pub fn node_rng(seed: u64, salt: u64) -> SimRng {
        SimRng::seed_from_u64(seed ^ FAULT_SEED_SALT).fork(salt)
    }

    /// Subject `from:port` egress to the mirror loss/dup probabilities.
    pub fn mark_mirror_link(&mut self, from: NodeId, port: PortId) {
        self.marked_links.insert((from, port));
    }

    /// Add a freeze window. Zero-length windows are ignored.
    pub fn add_freeze(&mut self, w: FreezeWindow) {
        if w.until > w.from {
            self.freezes.push(w);
        }
    }

    /// True when a transmit on this link must consult the plane. Split
    /// from [`fate`](Self::fate) so unmarked links never touch the RNG.
    pub fn covers_link(&self, from: NodeId, port: PortId) -> bool {
        self.marked_links.contains(&(from, port))
    }

    /// Decide one transmit on a marked link. Draws loss first and, only
    /// when the frame survives, duplication — at most two draws per
    /// transmit, in a fixed order, so the schedule replays exactly.
    pub fn fate(&mut self, from: NodeId, port: PortId) -> TransmitFate {
        debug_assert!(self.covers_link(from, port));
        if self.mirror.loss_prob > 0.0 && self.rng.chance(self.mirror.loss_prob) {
            self.stats.mirror_copies_dropped += 1;
            return TransmitFate::Drop;
        }
        if self.mirror.dup_prob > 0.0 && self.rng.chance(self.mirror.dup_prob) {
            self.stats.mirror_copies_duplicated += 1;
            return TransmitFate::Duplicate;
        }
        TransmitFate::Deliver
    }

    /// If `node` is frozen at `at`, the thaw instant of the covering
    /// window (the latest, when windows overlap).
    pub fn frozen_until(&self, node: NodeId, at: SimTime) -> Option<SimTime> {
        self.freezes
            .iter()
            .filter(|w| w.node == node && at >= w.from && at < w.until)
            .map(|w| w.until)
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(loss: f64, dup: f64) -> FaultPlane {
        let mut p = FaultPlane::new(
            7,
            MirrorFaults {
                loss_prob: loss,
                dup_prob: dup,
            },
        );
        p.mark_mirror_link(NodeId(2), PortId(3));
        p
    }

    #[test]
    fn fates_replay_bit_for_bit() {
        let run = || {
            let mut p = plane(0.3, 0.2);
            (0..256)
                .map(|_| p.fate(NodeId(2), PortId(3)))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains(&TransmitFate::Drop));
        assert!(a.contains(&TransmitFate::Duplicate));
        assert!(a.contains(&TransmitFate::Deliver));
    }

    #[test]
    fn zero_probabilities_never_draw() {
        // With both probabilities zero the RNG is untouched, so two planes
        // diverge only once a positive probability forces a draw.
        let mut p = plane(0.0, 0.0);
        for _ in 0..64 {
            assert_eq!(p.fate(NodeId(2), PortId(3)), TransmitFate::Deliver);
        }
        assert_eq!(p.stats, FaultStats::default());
    }

    #[test]
    fn unmarked_links_are_not_covered() {
        let p = plane(1.0, 0.0);
        assert!(p.covers_link(NodeId(2), PortId(3)));
        assert!(!p.covers_link(NodeId(2), PortId(4)));
        assert!(!p.covers_link(NodeId(1), PortId(3)));
    }

    #[test]
    fn freeze_window_edges() {
        let mut p = plane(0.0, 0.0);
        p.add_freeze(FreezeWindow {
            node: NodeId(5),
            from: SimTime::from_micros(10),
            until: SimTime::from_micros(20),
        });
        // Zero-length windows vanish.
        p.add_freeze(FreezeWindow {
            node: NodeId(5),
            from: SimTime::from_micros(30),
            until: SimTime::from_micros(30),
        });
        let t = |us| SimTime::from_micros(us);
        assert_eq!(p.frozen_until(NodeId(5), t(9)), None);
        assert_eq!(p.frozen_until(NodeId(5), t(10)), Some(t(20)));
        assert_eq!(p.frozen_until(NodeId(5), t(19)), Some(t(20)));
        assert_eq!(p.frozen_until(NodeId(5), t(20)), None, "thaw is exclusive");
        assert_eq!(p.frozen_until(NodeId(5), t(30)), None);
        assert_eq!(p.frozen_until(NodeId(4), t(15)), None, "other nodes run");
    }

    #[test]
    fn overlapping_freezes_thaw_at_the_latest() {
        let mut p = plane(0.0, 0.0);
        let t = |us| SimTime::from_micros(us);
        p.add_freeze(FreezeWindow { node: NodeId(1), from: t(0), until: t(10) });
        p.add_freeze(FreezeWindow { node: NodeId(1), from: t(5), until: t(30) });
        assert_eq!(p.frozen_until(NodeId(1), t(7)), Some(t(30)));
    }

    #[test]
    fn fault_stats_snapshot_round_trips() {
        let s = FaultStats {
            mirror_copies_dropped: 3,
            mirror_copies_duplicated: 1,
            frames_dropped_frozen: 2,
            timers_deferred: 4,
        };
        let v = s.snapshot();
        assert_eq!(v["mirror_copies_dropped"], serde_json::Value::from(3u64));
        assert_eq!(s.metric_kind(), "faults");
    }
}
