//! Deterministic infrastructure fault injection.
//!
//! Lumina's §3.5 integrity check exists because the *testbed itself* can
//! fail — mirror copies are dropped when dumpers overload, capture hosts
//! stall, bits rot on the way to disk. This module injects those failures
//! on purpose, so the degraded-trace pipeline can be exercised instead of
//! merely survived: the [`FaultPlane`] sits inside the [`Engine`]
//! (`Engine::set_fault_plane`) and intercepts two spots of the event loop:
//!
//! * **Marked links** (the switch→dumper mirror paths) may drop or
//!   duplicate a frame per transmit, per [`MirrorFaults`] probabilities.
//! * **Frozen nodes** (mid-run freeze/restart windows) lose arriving
//!   frames and have their timers deferred to the thaw instant.
//!
//! All randomness comes from the plane's own [`SimRng`], seeded
//! independently of the engine's — a run with a fault plane attached
//! consumes *zero* draws from the engine stream on unmarked links, so the
//! simulated workload itself is byte-identical with and without faults;
//! only the infrastructure behavior changes. Same seed, same fault
//! schedule, bit for bit.
//!
//! Dumper-local faults (core stalls, capture bit-rot) live with the dumper
//! model in `lumina-dumper`; this module only owns what the engine must
//! arbitrate.
//!
//! # The data-path chaos plane
//!
//! The [`FaultPlane`] deliberately leaves the host↔switch data links
//! pristine: the paper's testbed trusts its DUT links. Real fabrics do
//! not — links flap, loss arrives in sustained bursts, and PFC pause
//! storms stall serialization for milliseconds. The [`ChaosPlane`] injects
//! those *data-path* regimes, per directed link:
//!
//! * **Flap windows** take a link down for `[from, until)`: every frame
//!   whose handoff *or* arrival falls inside the window is dropped —
//!   including frames already in flight when the link went down.
//! * **Pause windows** (PFC-style) stall a link's serialization: frames
//!   handed to the link during the window depart at the window's end, in
//!   order, without a single drop.
//! * **Burst regimes** apply sustained seeded loss / corruption / reorder
//!   probabilities inside their window, drawn from the plane's own RNG.
//!
//! Like the fault plane, the chaos plane owns an RNG seeded independently
//! of the engine's ([`ChaosPlane::new`] folds in its own salt), and
//! [`ChaosPlane::covers_link`] is checked before any draw — a run without
//! a chaos plane, or with one that covers no link a frame crosses, makes
//! *zero* chaos draws and replays byte-identically. Flap and pause
//! decisions are pure window lookups and never touch the RNG at all.
//!
//! [`Engine`]: crate::Engine

use crate::engine::{NodeId, PortId};
use crate::rng::SimRng;
use crate::time::SimTime;
use lumina_telemetry::MetricSet;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Salt folded into the fault seed so a plane seeded with the campaign
/// seed still draws a stream unrelated to the engine's.
const FAULT_SEED_SALT: u64 = 0xfa17_ab1e_0bad_cafe;

/// Salt for the chaos plane's RNG: distinct from both the engine stream
/// and the fault plane's, so mirror faults and data-path chaos can share
/// one campaign seed without entangling their schedules.
const CHAOS_SEED_SALT: u64 = 0xc7a0_5bad_5eed_f00d;

/// Loss/duplication probabilities applied per transmit on marked links.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MirrorFaults {
    /// Probability a mirror copy is silently dropped in flight.
    pub loss_prob: f64,
    /// Probability a mirror copy is delivered twice (serialized back to
    /// back on the link, like a flapping port replaying its FIFO).
    pub dup_prob: f64,
}

/// A mid-run node outage: events in `[from, until)` are intercepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FreezeWindow {
    /// The frozen node.
    pub node: NodeId,
    /// First frozen instant (inclusive).
    pub from: SimTime,
    /// Thaw instant (exclusive) — deferred timers fire here.
    pub until: SimTime,
}

/// What the plane decided for one transmit on a marked link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitFate {
    /// Deliver normally.
    Deliver,
    /// Drop the frame silently.
    Drop,
    /// Deliver the frame twice.
    Duplicate,
}

/// Counters the plane accumulates during a run. Recorded into telemetry
/// (kind `faults`) only when a plane is attached, so fault-free runs keep
/// their snapshots — and golden reports — unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Mirror copies dropped on marked links.
    pub mirror_copies_dropped: u64,
    /// Mirror copies delivered twice on marked links.
    pub mirror_copies_duplicated: u64,
    /// Frames lost because their destination node was frozen.
    pub frames_dropped_frozen: u64,
    /// Timers deferred to a freeze window's thaw instant.
    pub timers_deferred: u64,
}

impl MetricSet for FaultStats {
    fn metric_kind(&self) -> &'static str {
        "faults"
    }

    fn snapshot(&self) -> serde_json::Value {
        // Infallible for a struct of plain integers; Null beats a panic
        // inside a degraded run's teardown if that ever changes.
        serde_json::to_value(self).unwrap_or(serde_json::Value::Null)
    }
}

/// The seeded fault injector the engine consults. Build one, mark the
/// mirror links and freeze windows, then hand it to
/// [`Engine::set_fault_plane`](crate::Engine::set_fault_plane).
#[derive(Debug, Clone)]
pub struct FaultPlane {
    rng: SimRng,
    mirror: MirrorFaults,
    /// Egress `(node, port)` keys subject to [`MirrorFaults`].
    marked_links: HashSet<(NodeId, PortId)>,
    freezes: Vec<FreezeWindow>,
    /// Run counters (engine-owned faults only; dumper-local fault counts
    /// live in the dumper's capture state).
    pub stats: FaultStats,
}

impl FaultPlane {
    /// Create a plane with its own RNG stream derived from `seed`.
    pub fn new(seed: u64, mirror: MirrorFaults) -> FaultPlane {
        FaultPlane {
            rng: SimRng::seed_from_u64(seed ^ FAULT_SEED_SALT),
            mirror,
            marked_links: HashSet::new(),
            freezes: Vec::new(),
            stats: FaultStats::default(),
        }
    }

    /// Fork a child RNG for a node-local fault injector (e.g. one per
    /// dumper) without perturbing the plane's own stream ordering across
    /// node counts: the child is derived from the plane seed, not drawn
    /// from the plane stream.
    pub fn node_rng(seed: u64, salt: u64) -> SimRng {
        SimRng::seed_from_u64(seed ^ FAULT_SEED_SALT).fork(salt)
    }

    /// Subject `from:port` egress to the mirror loss/dup probabilities.
    pub fn mark_mirror_link(&mut self, from: NodeId, port: PortId) {
        self.marked_links.insert((from, port));
    }

    /// Add a freeze window. Zero-length windows are ignored.
    pub fn add_freeze(&mut self, w: FreezeWindow) {
        if w.until > w.from {
            self.freezes.push(w);
        }
    }

    /// True when a transmit on this link must consult the plane. Split
    /// from [`fate`](Self::fate) so unmarked links never touch the RNG.
    pub fn covers_link(&self, from: NodeId, port: PortId) -> bool {
        self.marked_links.contains(&(from, port))
    }

    /// Decide one transmit on a marked link. Draws loss first and, only
    /// when the frame survives, duplication — at most two draws per
    /// transmit, in a fixed order, so the schedule replays exactly.
    pub fn fate(&mut self, from: NodeId, port: PortId) -> TransmitFate {
        debug_assert!(self.covers_link(from, port));
        if self.mirror.loss_prob > 0.0 && self.rng.chance(self.mirror.loss_prob) {
            self.stats.mirror_copies_dropped += 1;
            return TransmitFate::Drop;
        }
        if self.mirror.dup_prob > 0.0 && self.rng.chance(self.mirror.dup_prob) {
            self.stats.mirror_copies_duplicated += 1;
            return TransmitFate::Duplicate;
        }
        TransmitFate::Deliver
    }

    /// If `node` is frozen at `at`, the thaw instant of the covering
    /// window (the latest, when windows overlap).
    pub fn frozen_until(&self, node: NodeId, at: SimTime) -> Option<SimTime> {
        self.freezes
            .iter()
            .filter(|w| w.node == node && at >= w.from && at < w.until)
            .map(|w| w.until)
            .max()
    }
}

/// A half-open `[from, until)` time window on a chaos-covered link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosWindow {
    /// First affected instant (inclusive).
    pub from: SimTime,
    /// End of the regime (exclusive).
    pub until: SimTime,
}

impl ChaosWindow {
    /// True when `at` falls inside the window.
    pub fn contains(&self, at: SimTime) -> bool {
        at >= self.from && at < self.until
    }
}

/// A sustained random-impairment regime on a link: seeded loss, payload
/// corruption and reorder-by-delay, active inside its window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstRegime {
    /// When the regime applies.
    pub window: ChaosWindow,
    /// Probability a frame in the window is dropped.
    pub loss_prob: f64,
    /// Probability a surviving frame has a tail byte flipped (the
    /// receiver's ICRC check catches it, like line damage).
    pub corrupt_prob: f64,
    /// Probability a surviving frame is delayed past later traffic.
    pub reorder_prob: f64,
    /// Extra in-flight delay applied to reordered frames.
    pub reorder_delay: SimTime,
}

/// The chaos schedule of one directed link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkChaos {
    /// Down/up windows: frames handed off or arriving inside one are lost.
    pub flaps: Vec<ChaosWindow>,
    /// PFC-style pause windows: serialization stalls, nothing drops.
    pub pauses: Vec<ChaosWindow>,
    /// Sustained loss/corruption/reorder regimes.
    pub bursts: Vec<BurstRegime>,
}

impl LinkChaos {
    /// True when this schedule can never touch a frame.
    pub fn is_noop(&self) -> bool {
        self.flaps.is_empty()
            && self.pauses.is_empty()
            && self.bursts.iter().all(|b| {
                b.loss_prob <= 0.0 && b.corrupt_prob <= 0.0 && b.reorder_prob <= 0.0
            })
    }
}

/// What the chaos plane decided for one transmit on a covered link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosFate {
    /// Deliver normally.
    Deliver,
    /// Lost to a link-down window (deterministic, no RNG draw).
    FlapDrop,
    /// Lost to a burst regime's loss draw.
    BurstDrop,
    /// Delivered with one byte flipped at `offset` (xor `mask`).
    Corrupt {
        /// Byte offset into the frame, chosen near the tail so the flip
        /// lands in payload/ICRC territory, not the routing headers.
        offset: usize,
        /// Bit flipped at that offset.
        mask: u8,
    },
    /// Delivered late: arrival shifted by the contained delay.
    Delay(SimTime),
}

/// Counters the chaos plane accumulates during a run. Recorded into
/// telemetry (kind `chaos`) only when a plane is attached, so chaos-free
/// runs keep their snapshots — and golden reports — unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosStats {
    /// Frames lost to link-down windows (handoff or arrival inside one).
    pub flap_drops: u64,
    /// Frames lost to burst-regime loss draws.
    pub burst_drops: u64,
    /// Frames delivered with a flipped byte.
    pub corruptions: u64,
    /// Frames delivered late by a reorder draw.
    pub reorders: u64,
    /// Frames whose handoff was stalled by a pause window.
    pub paused_frames: u64,
    /// Total nanoseconds of pause-induced handoff delay.
    pub pause_delay_ns: u64,
}

impl ChaosStats {
    /// Frames the data path lost outright (flap + burst), the external
    /// evidence the conformance oracle uses to justify retransmissions it
    /// cannot attribute to the mirror record.
    pub fn data_drops(&self) -> u64 {
        self.flap_drops + self.burst_drops
    }
}

impl MetricSet for ChaosStats {
    fn metric_kind(&self) -> &'static str {
        "chaos"
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).unwrap_or(serde_json::Value::Null)
    }
}

/// The seeded data-path chaos injector the engine consults. Build one,
/// attach per-link schedules, then hand it to
/// [`Engine::set_chaos_plane`](crate::Engine::set_chaos_plane).
#[derive(Debug, Clone)]
pub struct ChaosPlane {
    rng: SimRng,
    links: HashMap<(NodeId, PortId), LinkChaos>,
    /// Run counters.
    pub stats: ChaosStats,
}

impl ChaosPlane {
    /// Create a plane with its own RNG stream derived from `seed`.
    pub fn new(seed: u64) -> ChaosPlane {
        ChaosPlane {
            rng: SimRng::seed_from_u64(seed ^ CHAOS_SEED_SALT),
            links: HashMap::new(),
            stats: ChaosStats::default(),
        }
    }

    /// Subject `from:port` egress to a chaos schedule. No-op schedules
    /// are not registered, so they cannot even cover a link.
    pub fn set_link(&mut self, from: NodeId, port: PortId, chaos: LinkChaos) {
        if !chaos.is_noop() {
            self.links.insert((from, port), chaos);
        }
    }

    /// True when a transmit on this link must consult the plane. Split
    /// from [`fate`](Self::fate) so uncovered links never touch the RNG.
    pub fn covers_link(&self, from: NodeId, port: PortId) -> bool {
        self.links.contains_key(&(from, port))
    }

    /// True when no link carries any schedule.
    pub fn is_noop(&self) -> bool {
        self.links.is_empty()
    }

    /// If a pause window covers the handoff instant `at`, the instant the
    /// link resumes (the latest end among covering windows). Pure window
    /// lookup — no RNG. Updates the pause counters.
    pub fn pause_until(&mut self, from: NodeId, port: PortId, at: SimTime) -> Option<SimTime> {
        let resume = self
            .links
            .get(&(from, port))?
            .pauses
            .iter()
            .filter(|w| w.contains(at))
            .map(|w| w.until)
            .max()?;
        self.stats.paused_frames += 1;
        self.stats.pause_delay_ns += resume.saturating_since(at).as_nanos();
        Some(resume)
    }

    /// Decide one transmit on a covered link. Flap windows are checked
    /// first (deterministic — a down link needs no dice), then the burst
    /// regime covering the handoff draws loss, corruption and reorder in
    /// a fixed order, each only when its probability is positive — so the
    /// schedule replays exactly for a given seed.
    pub fn fate(
        &mut self,
        from: NodeId,
        port: PortId,
        handoff: SimTime,
        arrival: SimTime,
        frame_len: usize,
    ) -> ChaosFate {
        let Some(lc) = self.links.get(&(from, port)) else {
            return ChaosFate::Deliver;
        };
        if lc
            .flaps
            .iter()
            .any(|w| w.contains(handoff) || w.contains(arrival))
        {
            self.stats.flap_drops += 1;
            return ChaosFate::FlapDrop;
        }
        let Some(burst) = lc.bursts.iter().find(|b| b.window.contains(handoff)).copied()
        else {
            return ChaosFate::Deliver;
        };
        if burst.loss_prob > 0.0 && self.rng.chance(burst.loss_prob) {
            self.stats.burst_drops += 1;
            return ChaosFate::BurstDrop;
        }
        if burst.corrupt_prob > 0.0 && self.rng.chance(burst.corrupt_prob) {
            // Flip a bit in the frame's tail 32 bytes: payload/ICRC
            // territory on any minimum-size RoCE frame, never the L2/L3
            // headers (a header flip would be a routing fault, not line
            // damage the ICRC is meant to catch).
            let tail = frame_len.clamp(1, 32) as u64;
            let offset = frame_len.saturating_sub(1 + self.rng.below(tail) as usize);
            let mask = 1u8 << self.rng.below(8);
            self.stats.corruptions += 1;
            return ChaosFate::Corrupt { offset, mask };
        }
        if burst.reorder_prob > 0.0 && self.rng.chance(burst.reorder_prob) {
            self.stats.reorders += 1;
            return ChaosFate::Delay(burst.reorder_delay);
        }
        ChaosFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(loss: f64, dup: f64) -> FaultPlane {
        let mut p = FaultPlane::new(
            7,
            MirrorFaults {
                loss_prob: loss,
                dup_prob: dup,
            },
        );
        p.mark_mirror_link(NodeId(2), PortId(3));
        p
    }

    #[test]
    fn fates_replay_bit_for_bit() {
        let run = || {
            let mut p = plane(0.3, 0.2);
            (0..256)
                .map(|_| p.fate(NodeId(2), PortId(3)))
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains(&TransmitFate::Drop));
        assert!(a.contains(&TransmitFate::Duplicate));
        assert!(a.contains(&TransmitFate::Deliver));
    }

    #[test]
    fn zero_probabilities_never_draw() {
        // With both probabilities zero the RNG is untouched, so two planes
        // diverge only once a positive probability forces a draw.
        let mut p = plane(0.0, 0.0);
        for _ in 0..64 {
            assert_eq!(p.fate(NodeId(2), PortId(3)), TransmitFate::Deliver);
        }
        assert_eq!(p.stats, FaultStats::default());
    }

    #[test]
    fn unmarked_links_are_not_covered() {
        let p = plane(1.0, 0.0);
        assert!(p.covers_link(NodeId(2), PortId(3)));
        assert!(!p.covers_link(NodeId(2), PortId(4)));
        assert!(!p.covers_link(NodeId(1), PortId(3)));
    }

    #[test]
    fn freeze_window_edges() {
        let mut p = plane(0.0, 0.0);
        p.add_freeze(FreezeWindow {
            node: NodeId(5),
            from: SimTime::from_micros(10),
            until: SimTime::from_micros(20),
        });
        // Zero-length windows vanish.
        p.add_freeze(FreezeWindow {
            node: NodeId(5),
            from: SimTime::from_micros(30),
            until: SimTime::from_micros(30),
        });
        let t = |us| SimTime::from_micros(us);
        assert_eq!(p.frozen_until(NodeId(5), t(9)), None);
        assert_eq!(p.frozen_until(NodeId(5), t(10)), Some(t(20)));
        assert_eq!(p.frozen_until(NodeId(5), t(19)), Some(t(20)));
        assert_eq!(p.frozen_until(NodeId(5), t(20)), None, "thaw is exclusive");
        assert_eq!(p.frozen_until(NodeId(5), t(30)), None);
        assert_eq!(p.frozen_until(NodeId(4), t(15)), None, "other nodes run");
    }

    #[test]
    fn overlapping_freezes_thaw_at_the_latest() {
        let mut p = plane(0.0, 0.0);
        let t = |us| SimTime::from_micros(us);
        p.add_freeze(FreezeWindow { node: NodeId(1), from: t(0), until: t(10) });
        p.add_freeze(FreezeWindow { node: NodeId(1), from: t(5), until: t(30) });
        assert_eq!(p.frozen_until(NodeId(1), t(7)), Some(t(30)));
    }

    fn window(from_us: u64, until_us: u64) -> ChaosWindow {
        ChaosWindow {
            from: SimTime::from_micros(from_us),
            until: SimTime::from_micros(until_us),
        }
    }

    #[test]
    fn flap_drops_are_deterministic_and_rng_free() {
        let mut p = ChaosPlane::new(3);
        p.set_link(
            NodeId(0),
            PortId(0),
            LinkChaos {
                flaps: vec![window(10, 20)],
                ..LinkChaos::default()
            },
        );
        let t = |us| SimTime::from_micros(us);
        // Handoff inside the window, arrival inside the window, and both
        // outside — two planes with different seeds agree exactly because
        // flap decisions never draw.
        let mut q = ChaosPlane::new(999);
        q.set_link(
            NodeId(0),
            PortId(0),
            LinkChaos {
                flaps: vec![window(10, 20)],
                ..LinkChaos::default()
            },
        );
        for (h, a) in [(12, 13), (5, 15), (5, 6), (20, 21)] {
            let fp = p.fate(NodeId(0), PortId(0), t(h), t(a), 100);
            let fq = q.fate(NodeId(0), PortId(0), t(h), t(a), 100);
            assert_eq!(fp, fq);
        }
        assert_eq!(p.stats.flap_drops, 2, "{:?}", p.stats);
    }

    #[test]
    fn pause_stalls_without_dropping() {
        let mut p = ChaosPlane::new(3);
        p.set_link(
            NodeId(1),
            PortId(0),
            LinkChaos {
                pauses: vec![window(100, 150)],
                ..LinkChaos::default()
            },
        );
        let t = |us| SimTime::from_micros(us);
        assert_eq!(p.pause_until(NodeId(1), PortId(0), t(120)), Some(t(150)));
        assert_eq!(p.pause_until(NodeId(1), PortId(0), t(150)), None);
        assert_eq!(p.pause_until(NodeId(1), PortId(0), t(99)), None);
        assert_eq!(p.pause_until(NodeId(2), PortId(0), t(120)), None);
        assert_eq!(p.stats.paused_frames, 1);
        assert_eq!(p.stats.pause_delay_ns, 30_000);
        // A paused frame is never a dropped frame.
        assert_eq!(p.stats.data_drops(), 0);
    }

    #[test]
    fn burst_regime_replays_bit_for_bit_and_zero_probs_never_draw() {
        let chaos = |loss, corrupt, reorder| LinkChaos {
            bursts: vec![BurstRegime {
                window: window(0, 1000),
                loss_prob: loss,
                corrupt_prob: corrupt,
                reorder_prob: reorder,
                reorder_delay: SimTime::from_micros(5),
            }],
            ..LinkChaos::default()
        };
        let run = || {
            let mut p = ChaosPlane::new(11);
            p.set_link(NodeId(0), PortId(0), chaos(0.3, 0.2, 0.2));
            (0..256)
                .map(|i| {
                    p.fate(
                        NodeId(0),
                        PortId(0),
                        SimTime::from_micros(i),
                        SimTime::from_micros(i + 1),
                        128,
                    )
                })
                .collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains(&ChaosFate::BurstDrop));
        assert!(a.iter().any(|f| matches!(f, ChaosFate::Corrupt { .. })));
        assert!(a
            .iter()
            .any(|f| matches!(f, ChaosFate::Delay(d) if *d == SimTime::from_micros(5))));
        // All-zero probabilities leave the RNG untouched entirely — and a
        // fully no-op schedule never even covers the link.
        let mut p = ChaosPlane::new(11);
        p.set_link(NodeId(0), PortId(0), chaos(0.0, 0.0, 0.0));
        assert!(!p.covers_link(NodeId(0), PortId(0)));
        assert!(p.is_noop());
    }

    #[test]
    fn corruption_offsets_stay_in_the_frame_tail() {
        let mut p = ChaosPlane::new(17);
        p.set_link(
            NodeId(0),
            PortId(0),
            LinkChaos {
                bursts: vec![BurstRegime {
                    window: window(0, 1000),
                    loss_prob: 0.0,
                    corrupt_prob: 1.0,
                    reorder_prob: 0.0,
                    reorder_delay: SimTime::ZERO,
                }],
                ..LinkChaos::default()
            },
        );
        for len in [1usize, 2, 31, 32, 64, 1500] {
            for _ in 0..32 {
                let f = p.fate(
                    NodeId(0),
                    PortId(0),
                    SimTime::from_micros(1),
                    SimTime::from_micros(2),
                    len,
                );
                let ChaosFate::Corrupt { offset, mask } = f else {
                    panic!("expected corruption, got {f:?}");
                };
                assert!(offset < len, "offset {offset} out of frame len {len}");
                assert!(offset + 32 >= len, "offset {offset} not in tail of {len}");
                assert_eq!(mask.count_ones(), 1);
            }
        }
    }

    #[test]
    fn chaos_stats_snapshot_round_trips() {
        let s = ChaosStats {
            flap_drops: 2,
            burst_drops: 3,
            corruptions: 1,
            reorders: 4,
            paused_frames: 5,
            pause_delay_ns: 6,
        };
        let v = s.snapshot();
        assert_eq!(v["flap_drops"], serde_json::Value::from(2u64));
        assert_eq!(s.metric_kind(), "chaos");
        assert_eq!(s.data_drops(), 5);
    }

    #[test]
    fn fault_stats_snapshot_round_trips() {
        let s = FaultStats {
            mirror_copies_dropped: 3,
            mirror_copies_duplicated: 1,
            frames_dropped_frozen: 2,
            timers_deferred: 4,
        };
        let v = s.snapshot();
        assert_eq!(v["mirror_copies_dropped"], serde_json::Value::from(3u64));
        assert_eq!(s.metric_kind(), "faults");
    }
}
