//! libpcap trace files: the nanosecond writer and its panic-free inverse.
//!
//! The orchestrator writes reconstructed packet traces in the standard
//! pcap format (magic `0xa1b23c4d`, the nanosecond-resolution variant) so
//! they can be opened in Wireshark/tcpdump, mirroring how Lumina's users
//! analyze dumped traffic offline.
//!
//! [`PcapReader`] is the other direction: the first byte stream the engine
//! does not control. It accepts classic pcap (both endiannesses, both the
//! microsecond and nanosecond magics) and pcapng (Section Header /
//! Interface Description / Enhanced and Simple Packet Blocks, per-interface
//! `if_tsresol`), under a strict degrade-don't-die contract:
//!
//! * **panic-free** — no `unwrap`/`expect`/unchecked indexing; the
//!   `panic_guard` integration test audits this file;
//! * **bounded** — a record claiming more than [`MAX_RECORD_BYTES`] or a
//!   block over [`MAX_BLOCK_BYTES`] is a lying header, reported as a typed
//!   error instead of an allocation;
//! * **offset-carrying** — every [`PcapReadError`] names the absolute file
//!   offset of the record that killed the framing, so callers can say
//!   exactly where a capture went bad and keep everything before it.

use crate::time::SimTime;
use std::io::{self, Read, Write};

/// Nanosecond-resolution pcap magic number.
pub const PCAP_MAGIC_NS: u32 = 0xa1b2_3c4d;
/// Microsecond-resolution pcap magic number (classic tcpdump).
pub const PCAP_MAGIC_US: u32 = 0xa1b2_c3d4;
/// Link type: Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Sanity cap on one record's capture length. Jumbo frames top out around
/// 9 KiB; a record claiming more than this is a lying header, not data.
pub const MAX_RECORD_BYTES: u32 = 1 << 20;
/// Sanity cap on one pcapng block (a block wraps a record plus options).
pub const MAX_BLOCK_BYTES: u32 = 1 << 24;

const PCAPNG_SHB: [u8; 4] = [0x0a, 0x0d, 0x0d, 0x0a];
const PCAPNG_BOM: u32 = 0x1a2b_3c4d;
const PCAPNG_IDB: u32 = 1;
const PCAPNG_SPB: u32 = 3;
const PCAPNG_EPB: u32 = 6;
const OPT_ENDOFOPT: u16 = 0;
const OPT_IF_TSRESOL: u16 = 9;

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header. `snaplen` is the
    /// maximum capture length recorded in the header (Lumina's dumpers trim
    /// mirrored packets to 128 bytes).
    pub fn new(mut out: W, snaplen: u32) -> io::Result<PcapWriter<W>> {
        out.write_all(&PCAP_MAGIC_NS.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, packets: 0 })
    }

    /// Append one packet. `orig_len` is the original wire length before any
    /// trimming; `data` is the (possibly trimmed) capture.
    pub fn write_packet(&mut self, ts: SimTime, data: &[u8], orig_len: usize) -> io::Result<()> {
        let ns = ts.as_nanos();
        let secs = (ns / 1_000_000_000) as u32;
        let nanos = (ns % 1_000_000_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&nanos.to_le_bytes())?;
        self.out.write_all(&(data.len() as u32).to_le_bytes())?;
        self.out.write_all(&(orig_len as u32).to_le_bytes())?;
        self.out.write_all(data)?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Which container format a capture file uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapFormat {
    /// Classic libpcap (24-byte global header, 16-byte record headers).
    Classic,
    /// pcapng (block-structured, per-interface timestamp resolution).
    PcapNg,
}

impl PcapFormat {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            PcapFormat::Classic => "pcap",
            PcapFormat::PcapNg => "pcapng",
        }
    }
}

/// Why reading a capture file stopped, and where.
#[derive(Debug)]
pub struct PcapReadError {
    /// Absolute file offset of the header or record that failed.
    pub offset: u64,
    /// What went wrong there.
    pub kind: PcapReadErrorKind,
}

/// The failure classes of [`PcapReader`].
#[derive(Debug)]
pub enum PcapReadErrorKind {
    /// The underlying reader failed.
    Io(io::Error),
    /// The first bytes match no supported capture format.
    BadMagic(u32),
    /// Structurally invalid framing; the message names the field.
    Malformed(&'static str),
    /// A record or block claims a length beyond the sanity cap.
    Oversized {
        /// The length the header claims.
        claimed: u32,
        /// The cap it exceeded.
        cap: u32,
    },
    /// The file ends in the middle of the named structure.
    Truncated(&'static str),
}

impl std::fmt::Display for PcapReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "offset {}: ", self.offset)?;
        match &self.kind {
            PcapReadErrorKind::Io(e) => write!(f, "read failed: {e}"),
            PcapReadErrorKind::BadMagic(m) => {
                write!(f, "magic {m:#010x} is neither pcap nor pcapng")
            }
            PcapReadErrorKind::Malformed(what) => write!(f, "malformed {what}"),
            PcapReadErrorKind::Oversized { claimed, cap } => {
                write!(f, "length field claims {claimed} bytes (cap {cap})")
            }
            PcapReadErrorKind::Truncated(what) => write!(f, "file ends inside {what}"),
        }
    }
}

impl std::error::Error for PcapReadError {}

/// One packet record read back from a capture file.
#[derive(Debug, Clone)]
pub struct PcapRecord {
    /// Absolute file offset of the record's header.
    pub offset: u64,
    /// Capture timestamp, normalized to nanoseconds.
    pub ts: SimTime,
    /// Original wire length the header claims.
    pub orig_len: u32,
    /// The captured bytes (at most `caplen`).
    pub data: Vec<u8>,
}

impl PcapRecord {
    /// True when the capture holds fewer bytes than the wire carried.
    pub fn truncated(&self) -> bool {
        (self.data.len() as u32) < self.orig_len
    }
}

/// Per-interface metadata a pcapng section declares.
#[derive(Debug, Clone, Copy)]
struct Interface {
    /// Timestamp ticks per second (from `if_tsresol`; default 10^6).
    ticks_per_sec: u64,
    /// Declared snap length (0 = unlimited).
    snaplen: u32,
}

/// Streaming, panic-free reader for classic pcap and pcapng files — the
/// inverse of [`PcapWriter`]. Yields records until clean EOF (`None`) or
/// the first structural error (one final `Some(Err(_))` carrying the file
/// offset, then `None` forever: a broken framing cannot be resynced).
#[derive(Debug)]
pub struct PcapReader<R: Read> {
    inner: R,
    offset: u64,
    format: PcapFormat,
    big_endian: bool,
    /// Classic only: sub-second field unit.
    frac_is_nanos: bool,
    /// Classic header snaplen (informational).
    snaplen: u32,
    /// Classic header link type (informational; pcapng: first IDB's).
    linktype: u32,
    /// pcapng interfaces of the current section.
    interfaces: Vec<Interface>,
    blocks_skipped: u64,
    records: u64,
    done: bool,
}

impl<R: Read> PcapReader<R> {
    /// Open a capture stream: parses the global header (classic) or the
    /// leading Section Header Block (pcapng). Fails with the offset of the
    /// first malformed byte when the stream is neither.
    pub fn new(inner: R) -> Result<PcapReader<R>, PcapReadError> {
        let mut r = PcapReader {
            inner,
            offset: 0,
            format: PcapFormat::Classic,
            big_endian: false,
            frac_is_nanos: false,
            snaplen: 0,
            linktype: 0,
            interfaces: Vec::new(),
            blocks_skipped: 0,
            records: 0,
            done: false,
        };
        let mut magic = [0u8; 4];
        r.fill(&mut magic, "file header")?;
        if magic == PCAPNG_SHB {
            r.format = PcapFormat::PcapNg;
            let mut len_raw = [0u8; 4];
            r.fill(&mut len_raw, "section header")?;
            r.read_shb_body(0, len_raw)?;
            return Ok(r);
        }
        let raw = u32::from_le_bytes(magic);
        (r.big_endian, r.frac_is_nanos) = match raw {
            PCAP_MAGIC_US => (false, false),
            PCAP_MAGIC_NS => (false, true),
            m if m == PCAP_MAGIC_US.swap_bytes() => (true, false),
            m if m == PCAP_MAGIC_NS.swap_bytes() => (true, true),
            m => {
                return Err(PcapReadError {
                    offset: 0,
                    kind: PcapReadErrorKind::BadMagic(m),
                })
            }
        };
        let mut rest = [0u8; 20];
        r.fill(&mut rest, "file header")?;
        // version(4) thiszone(4) sigfigs(4) snaplen(4) linktype(4).
        r.snaplen = r.u32_at(&rest, 12).unwrap_or(0);
        r.linktype = r.u32_at(&rest, 16).unwrap_or(0);
        Ok(r)
    }

    /// Container format detected from the magic.
    pub fn format(&self) -> PcapFormat {
        self.format
    }

    /// True when the current section is big-endian.
    pub fn big_endian(&self) -> bool {
        self.big_endian
    }

    /// Declared snap length (classic header; 0 when unknown).
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Declared link type (classic header or first pcapng interface).
    pub fn linktype(&self) -> u32 {
        self.linktype
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Records successfully yielded so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// pcapng blocks of unknown type skipped so far.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    /// The next record: `None` at clean EOF; one final `Err` (then `None`)
    /// when the framing breaks mid-file.
    pub fn next_record(&mut self) -> Option<Result<PcapRecord, PcapReadError>> {
        if self.done {
            return None;
        }
        let step = match self.format {
            PcapFormat::Classic => self.next_classic(),
            PcapFormat::PcapNg => self.next_pcapng(),
        };
        match step {
            Ok(Some(rec)) => {
                self.records += 1;
                Some(Ok(rec))
            }
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }

    // ---- byte-level helpers -------------------------------------------

    fn err(&self, offset: u64, kind: PcapReadErrorKind) -> PcapReadError {
        PcapReadError { offset, kind }
    }

    /// Read exactly `buf.len()` bytes or fail, naming `what`.
    fn fill(&mut self, buf: &mut [u8], what: &'static str) -> Result<(), PcapReadError> {
        let start = self.offset;
        if !self.read_or_eof(buf, what)? {
            return Err(self.err(start, PcapReadErrorKind::Truncated(what)));
        }
        Ok(())
    }

    /// Read exactly `buf.len()` bytes; `Ok(false)` on clean EOF before the
    /// first byte, an error if the stream ends partway through.
    fn read_or_eof(&mut self, buf: &mut [u8], what: &'static str) -> Result<bool, PcapReadError> {
        let start = self.offset;
        let mut got = 0usize;
        while got < buf.len() {
            match self.inner.read(&mut buf[got..]) {
                Ok(0) => {
                    if got == 0 {
                        return Ok(false);
                    }
                    return Err(self.err(start, PcapReadErrorKind::Truncated(what)));
                }
                Ok(n) => {
                    got += n;
                    self.offset += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.err(self.offset, PcapReadErrorKind::Io(e))),
            }
        }
        Ok(true)
    }

    /// Decode a u32 at `off` in the current section's byte order.
    fn u32_at(&self, buf: &[u8], off: usize) -> Option<u32> {
        let s = buf.get(off..off.checked_add(4)?)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(s);
        Some(self.decode32(a))
    }

    /// Decode a u16 at `off` in the current section's byte order.
    fn u16_at(&self, buf: &[u8], off: usize) -> Option<u16> {
        let s = buf.get(off..off.checked_add(2)?)?;
        let a = [s[0], s[1]];
        Some(if self.big_endian {
            u16::from_be_bytes(a)
        } else {
            u16::from_le_bytes(a)
        })
    }

    fn decode32(&self, a: [u8; 4]) -> u32 {
        if self.big_endian {
            u32::from_be_bytes(a)
        } else {
            u32::from_le_bytes(a)
        }
    }

    // ---- classic pcap -------------------------------------------------

    fn next_classic(&mut self) -> Result<Option<PcapRecord>, PcapReadError> {
        let rec_off = self.offset;
        let mut hdr = [0u8; 16];
        if !self.read_or_eof(&mut hdr, "record header")? {
            return Ok(None);
        }
        let secs = self.u32_at(&hdr, 0).unwrap_or(0);
        let frac = self.u32_at(&hdr, 4).unwrap_or(0);
        let caplen = self.u32_at(&hdr, 8).unwrap_or(0);
        let orig_len = self.u32_at(&hdr, 12).unwrap_or(0);
        if caplen > MAX_RECORD_BYTES {
            return Err(self.err(
                rec_off,
                PcapReadErrorKind::Oversized {
                    claimed: caplen,
                    cap: MAX_RECORD_BYTES,
                },
            ));
        }
        let mut data = vec![0u8; caplen as usize];
        if let Err(mut e) = self.fill(&mut data, "record data") {
            // Anchor mid-record truncation to the record's own offset.
            if matches!(e.kind, PcapReadErrorKind::Truncated(_)) {
                e.offset = rec_off;
            }
            return Err(e);
        }
        let frac_ns = if self.frac_is_nanos {
            frac as u64
        } else {
            (frac as u64).saturating_mul(1_000)
        };
        let ns = (secs as u64)
            .saturating_mul(1_000_000_000)
            .saturating_add(frac_ns);
        Ok(Some(PcapRecord {
            offset: rec_off,
            ts: SimTime::from_nanos(ns),
            orig_len,
            data,
        }))
    }

    // ---- pcapng -------------------------------------------------------

    /// After the SHB block type was consumed: read the rest of a Section
    /// Header Block, switching the section's endianness.
    fn read_shb_body(&mut self, block_off: u64, len_raw: [u8; 4]) -> Result<(), PcapReadError> {
        let mut bom = [0u8; 4];
        self.fill(&mut bom, "section header")?;
        self.big_endian = match u32::from_le_bytes(bom) {
            PCAPNG_BOM => false,
            m if m == PCAPNG_BOM.swap_bytes() => true,
            _ => {
                return Err(self.err(
                    block_off,
                    PcapReadErrorKind::Malformed("byte-order magic"),
                ))
            }
        };
        let total = self.decode32(len_raw);
        if total < 28 || !total.is_multiple_of(4) {
            return Err(self.err(block_off, PcapReadErrorKind::Malformed("section block length")));
        }
        if total > MAX_BLOCK_BYTES {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Oversized {
                    claimed: total,
                    cap: MAX_BLOCK_BYTES,
                },
            ));
        }
        // type(4) + length(4) + bom(4) consumed; the rest ends with a copy
        // of the block length.
        let mut rest = vec![0u8; total as usize - 12];
        self.fill(&mut rest, "section header block")?;
        let tail_off = rest.len() - 4;
        if self.u32_at(&rest, tail_off) != Some(total) {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Malformed("trailing block length"),
            ));
        }
        // A new section: its interfaces start fresh.
        self.interfaces.clear();
        Ok(())
    }

    fn next_pcapng(&mut self) -> Result<Option<PcapRecord>, PcapReadError> {
        loop {
            let block_off = self.offset;
            let mut head = [0u8; 8];
            if !self.read_or_eof(&mut head, "block header")? {
                return Ok(None);
            }
            if head[0..4] == PCAPNG_SHB {
                // The length field is in the NEW section's byte order,
                // which read_shb_body derives from the byte-order magic.
                let len_raw = [head[4], head[5], head[6], head[7]];
                self.read_shb_body(block_off, len_raw)?;
                continue;
            }
            let btype = self.u32_at(&head, 0).unwrap_or(0);
            let total = self.u32_at(&head, 4).unwrap_or(0);
            if total < 12 || !total.is_multiple_of(4) {
                return Err(self.err(block_off, PcapReadErrorKind::Malformed("block length")));
            }
            if total > MAX_BLOCK_BYTES {
                return Err(self.err(
                    block_off,
                    PcapReadErrorKind::Oversized {
                        claimed: total,
                        cap: MAX_BLOCK_BYTES,
                    },
                ));
            }
            let mut body = vec![0u8; total as usize - 12];
            self.fill(&mut body, "block body")?;
            let mut tail = [0u8; 4];
            self.fill(&mut tail, "block trailer")?;
            if self.decode32(tail) != total {
                return Err(self.err(
                    block_off,
                    PcapReadErrorKind::Malformed("trailing block length"),
                ));
            }
            match btype {
                PCAPNG_IDB => self.parse_idb(block_off, &body)?,
                PCAPNG_EPB => return self.parse_epb(block_off, &body).map(Some),
                PCAPNG_SPB => return self.parse_spb(block_off, &body).map(Some),
                _ => self.blocks_skipped += 1,
            }
        }
    }

    fn parse_idb(&mut self, block_off: u64, body: &[u8]) -> Result<(), PcapReadError> {
        if body.len() < 8 {
            return Err(self.err(block_off, PcapReadErrorKind::Malformed("interface block")));
        }
        let linktype = self.u16_at(body, 0).unwrap_or(0) as u32;
        let snaplen = self.u32_at(body, 4).unwrap_or(0);
        if self.interfaces.is_empty() {
            self.linktype = linktype;
            self.snaplen = snaplen;
        }
        // Walk options for if_tsresol; anything malformed ends the walk
        // and leaves the spec default (microseconds) in place.
        let mut ticks_per_sec = 1_000_000u64;
        let mut off = 8usize;
        while let (Some(code), Some(olen)) = (self.u16_at(body, off), self.u16_at(body, off + 2)) {
            if code == OPT_ENDOFOPT {
                break;
            }
            if code == OPT_IF_TSRESOL && olen == 1 {
                if let Some(&v) = body.get(off + 4) {
                    ticks_per_sec = if v & 0x80 != 0 {
                        1u64.checked_shl((v & 0x7f) as u32).unwrap_or(ticks_per_sec)
                    } else {
                        10u64.checked_pow(v as u32).unwrap_or(ticks_per_sec)
                    };
                }
            }
            let padded = (olen as usize).div_ceil(4) * 4;
            off = match off.checked_add(4 + padded) {
                Some(next) => next,
                None => break,
            };
        }
        self.interfaces.push(Interface {
            ticks_per_sec,
            snaplen,
        });
        Ok(())
    }

    fn parse_epb(&mut self, block_off: u64, body: &[u8]) -> Result<PcapRecord, PcapReadError> {
        if body.len() < 20 {
            return Err(self.err(block_off, PcapReadErrorKind::Malformed("packet block")));
        }
        let iface = self.u32_at(body, 0).unwrap_or(0) as usize;
        let ts_hi = self.u32_at(body, 4).unwrap_or(0) as u64;
        let ts_lo = self.u32_at(body, 8).unwrap_or(0) as u64;
        let caplen = self.u32_at(body, 12).unwrap_or(0);
        let orig_len = self.u32_at(body, 16).unwrap_or(0);
        let Some(intf) = self.interfaces.get(iface) else {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Malformed("packet block interface id"),
            ));
        };
        if caplen > MAX_RECORD_BYTES {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Oversized {
                    claimed: caplen,
                    cap: MAX_RECORD_BYTES,
                },
            ));
        }
        let Some(data) = body.get(20..20 + caplen as usize) else {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Malformed("packet block capture length"),
            ));
        };
        let ticks = (ts_hi << 32) | ts_lo;
        let tps = intf.ticks_per_sec.max(1);
        let ns = ((ticks as u128).saturating_mul(1_000_000_000) / tps as u128) as u64;
        Ok(PcapRecord {
            offset: block_off,
            ts: SimTime::from_nanos(ns),
            orig_len,
            data: data.to_vec(),
        })
    }

    fn parse_spb(&mut self, block_off: u64, body: &[u8]) -> Result<PcapRecord, PcapReadError> {
        let Some(intf) = self.interfaces.first().copied() else {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Malformed("simple packet block before any interface"),
            ));
        };
        if body.len() < 4 {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Malformed("simple packet block"),
            ));
        }
        let orig_len = self.u32_at(body, 0).unwrap_or(0);
        // Captured length is implicit: min(orig_len, snaplen), bounded by
        // what the block physically holds.
        let mut caplen = orig_len.min(MAX_RECORD_BYTES) as usize;
        if intf.snaplen > 0 {
            caplen = caplen.min(intf.snaplen as usize);
        }
        caplen = caplen.min(body.len() - 4);
        let Some(data) = body.get(4..4 + caplen) else {
            return Err(self.err(
                block_off,
                PcapReadErrorKind::Malformed("simple packet block length"),
            ));
        };
        Ok(PcapRecord {
            offset: block_off,
            // Simple Packet Blocks carry no timestamp.
            ts: SimTime::ZERO,
            orig_len,
            data: data.to_vec(),
        })
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord, PcapReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout() {
        let w = PcapWriter::new(Vec::new(), 128).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), PCAP_MAGIC_NS);
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(buf[16..20].try_into().unwrap()), 128);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn packet_record_layout() {
        let mut w = PcapWriter::new(Vec::new(), 128).unwrap();
        let ts = SimTime::from_secs(3) + SimTime::from_nanos(42);
        w.write_packet(ts, &[0xaa; 60], 1024).unwrap();
        assert_eq!(w.packets(), 1);
        let buf = w.finish().unwrap();
        let rec = &buf[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 42);
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 60);
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 1024);
        assert_eq!(&rec[16..76], &[0xaa; 60]);
    }

    #[test]
    fn multiple_packets_append() {
        let mut w = PcapWriter::new(Vec::new(), 65535).unwrap();
        for i in 0..5u64 {
            w.write_packet(SimTime::from_micros(i), &[i as u8; 10], 10)
                .unwrap();
        }
        assert_eq!(w.packets(), 5);
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24 + 5 * (16 + 10));
    }

    #[test]
    fn reader_inverts_writer() {
        let mut w = PcapWriter::new(Vec::new(), 128).unwrap();
        let ts0 = SimTime::from_secs(1) + SimTime::from_nanos(999_999_999);
        w.write_packet(ts0, &[1, 2, 3], 1500).unwrap();
        w.write_packet(SimTime::from_nanos(7), &[0xff; 128], 128).unwrap();
        let buf = w.finish().unwrap();

        let mut r = PcapReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.format(), PcapFormat::Classic);
        assert!(!r.big_endian());
        assert_eq!(r.snaplen(), 128);
        assert_eq!(r.linktype(), LINKTYPE_ETHERNET);

        let a = r.next_record().unwrap().unwrap();
        assert_eq!(a.ts, ts0);
        assert_eq!(a.data, vec![1, 2, 3]);
        assert_eq!(a.orig_len, 1500);
        assert!(a.truncated());
        let b = r.next_record().unwrap().unwrap();
        assert_eq!(b.ts, SimTime::from_nanos(7));
        assert_eq!(b.orig_len, 128);
        assert!(!b.truncated());
        assert!(r.next_record().is_none());
        assert_eq!(r.records(), 2);
    }

    /// Hand-build a classic big-endian microsecond capture.
    fn be_us_capture() -> Vec<u8> {
        let mut f = Vec::new();
        f.extend_from_slice(&PCAP_MAGIC_US.to_be_bytes());
        f.extend_from_slice(&2u16.to_be_bytes());
        f.extend_from_slice(&4u16.to_be_bytes());
        f.extend_from_slice(&0u32.to_be_bytes()); // thiszone
        f.extend_from_slice(&0u32.to_be_bytes()); // sigfigs
        f.extend_from_slice(&65535u32.to_be_bytes());
        f.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        // One record: t = 2s + 5µs, 4 bytes captured of 90.
        f.extend_from_slice(&2u32.to_be_bytes());
        f.extend_from_slice(&5u32.to_be_bytes());
        f.extend_from_slice(&4u32.to_be_bytes());
        f.extend_from_slice(&90u32.to_be_bytes());
        f.extend_from_slice(&[9, 8, 7, 6]);
        f
    }

    #[test]
    fn big_endian_microsecond_classic() {
        let f = be_us_capture();
        let mut r = PcapReader::new(f.as_slice()).unwrap();
        assert!(r.big_endian());
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts.as_nanos(), 2_000_005_000);
        assert_eq!(rec.data, vec![9, 8, 7, 6]);
        assert_eq!(rec.orig_len, 90);
        assert!(r.next_record().is_none());
    }

    /// Hand-build a little-endian pcapng file: SHB + IDB (nanosecond
    /// tsresol) + one EPB.
    fn pcapng_capture(tsresol: Option<u8>, payload: &[u8]) -> Vec<u8> {
        let mut f = Vec::new();
        // SHB: type, len=28, BOM, version 1.0, section len -1, trailer.
        f.extend_from_slice(&PCAPNG_SHB);
        f.extend_from_slice(&28u32.to_le_bytes());
        f.extend_from_slice(&PCAPNG_BOM.to_le_bytes());
        f.extend_from_slice(&1u16.to_le_bytes());
        f.extend_from_slice(&0u16.to_le_bytes());
        f.extend_from_slice(&u64::MAX.to_le_bytes());
        f.extend_from_slice(&28u32.to_le_bytes());
        // IDB: linktype 1, snaplen 0, optional if_tsresol option.
        let opt_len = if tsresol.is_some() { 8 } else { 0 };
        let idb_len = 20 + opt_len;
        f.extend_from_slice(&PCAPNG_IDB.to_le_bytes());
        f.extend_from_slice(&(idb_len as u32).to_le_bytes());
        f.extend_from_slice(&1u16.to_le_bytes());
        f.extend_from_slice(&0u16.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        if let Some(v) = tsresol {
            f.extend_from_slice(&OPT_IF_TSRESOL.to_le_bytes());
            f.extend_from_slice(&1u16.to_le_bytes());
            f.extend_from_slice(&[v, 0, 0, 0]);
        }
        f.extend_from_slice(&(idb_len as u32).to_le_bytes());
        // EPB: iface 0, ts hi/lo, caplen = origlen = payload.len().
        let padded = payload.len().div_ceil(4) * 4;
        let epb_len = 32 + padded;
        let ts: u64 = 5_000_000_123;
        f.extend_from_slice(&PCAPNG_EPB.to_le_bytes());
        f.extend_from_slice(&(epb_len as u32).to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&((ts >> 32) as u32).to_le_bytes());
        f.extend_from_slice(&(ts as u32).to_le_bytes());
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        f.extend_from_slice(payload);
        f.extend_from_slice(&vec![0u8; padded - payload.len()]);
        f.extend_from_slice(&(epb_len as u32).to_le_bytes());
        f
    }

    #[test]
    fn pcapng_nanosecond_interface() {
        // tsresol 9 → ticks are nanoseconds.
        let f = pcapng_capture(Some(9), &[1, 2, 3, 4, 5]);
        let mut r = PcapReader::new(f.as_slice()).unwrap();
        assert_eq!(r.format(), PcapFormat::PcapNg);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts.as_nanos(), 5_000_000_123);
        assert_eq!(rec.data, vec![1, 2, 3, 4, 5]);
        assert!(r.next_record().is_none());
    }

    #[test]
    fn pcapng_default_microsecond_interface() {
        // No tsresol option → ticks are microseconds.
        let f = pcapng_capture(None, &[0xaa; 3]);
        let mut r = PcapReader::new(f.as_slice()).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts.as_nanos(), 5_000_000_123_000);
    }

    #[test]
    fn bad_magic_carries_offset_zero() {
        let e = PcapReader::new(&[0xde, 0xad, 0xbe, 0xef, 0, 0][..]).unwrap_err();
        assert_eq!(e.offset, 0);
        assert!(matches!(e.kind, PcapReadErrorKind::BadMagic(_)), "{e}");
    }

    #[test]
    fn truncated_record_names_its_offset() {
        let mut w = PcapWriter::new(Vec::new(), 128).unwrap();
        w.write_packet(SimTime::ZERO, &[1; 10], 10).unwrap();
        w.write_packet(SimTime::ZERO, &[2; 10], 10).unwrap();
        let mut buf = w.finish().unwrap();
        buf.truncate(buf.len() - 3); // cut into the second record's data
        let mut r = PcapReader::new(buf.as_slice()).unwrap();
        assert!(r.next_record().unwrap().is_ok());
        let e = r.next_record().unwrap().unwrap_err();
        assert_eq!(e.offset, 24 + 16 + 10, "second record's offset");
        assert!(matches!(e.kind, PcapReadErrorKind::Truncated(_)), "{e}");
        assert!(r.next_record().is_none(), "reader latches done after error");
    }

    #[test]
    fn oversized_caplen_is_rejected_not_allocated() {
        let mut f = Vec::new();
        f.extend_from_slice(&PCAP_MAGIC_NS.to_le_bytes());
        f.extend_from_slice(&[0u8; 20]);
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&0u32.to_le_bytes());
        f.extend_from_slice(&u32::MAX.to_le_bytes()); // caplen: 4 GiB lie
        f.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = PcapReader::new(f.as_slice()).unwrap();
        let e = r.next_record().unwrap().unwrap_err();
        assert!(matches!(e.kind, PcapReadErrorKind::Oversized { .. }), "{e}");
        assert_eq!(e.offset, 24);
    }

    #[test]
    fn pcapng_skips_unknown_blocks() {
        let mut f = pcapng_capture(Some(9), &[1, 2, 3, 4]);
        // Append an unknown block type (0x99) then a valid EPB-less EOF.
        f.extend_from_slice(&0x99u32.to_le_bytes());
        f.extend_from_slice(&16u32.to_le_bytes());
        f.extend_from_slice(&[0u8; 4]);
        f.extend_from_slice(&16u32.to_le_bytes());
        let mut r = PcapReader::new(f.as_slice()).unwrap();
        assert!(r.next_record().unwrap().is_ok());
        assert!(r.next_record().is_none());
        assert_eq!(r.blocks_skipped(), 1);
    }

    #[test]
    fn empty_input_fails_with_truncation() {
        let e = PcapReader::new(&[][..]).unwrap_err();
        assert!(matches!(e.kind, PcapReadErrorKind::Truncated(_)), "{e}");
    }
}
