//! libpcap trace files with nanosecond timestamps.
//!
//! The orchestrator writes reconstructed packet traces in the standard
//! pcap format (magic `0xa1b23c4d`, the nanosecond-resolution variant) so
//! they can be opened in Wireshark/tcpdump, mirroring how Lumina's users
//! analyze dumped traffic offline.

use crate::time::SimTime;
use std::io::{self, Write};

/// Nanosecond-resolution pcap magic number.
pub const PCAP_MAGIC_NS: u32 = 0xa1b2_3c4d;
/// Link type: Ethernet.
pub const LINKTYPE_ETHERNET: u32 = 1;

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
    packets: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Create a writer and emit the global header. `snaplen` is the
    /// maximum capture length recorded in the header (Lumina's dumpers trim
    /// mirrored packets to 128 bytes).
    pub fn new(mut out: W, snaplen: u32) -> io::Result<PcapWriter<W>> {
        out.write_all(&PCAP_MAGIC_NS.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&snaplen.to_le_bytes())?;
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, packets: 0 })
    }

    /// Append one packet. `orig_len` is the original wire length before any
    /// trimming; `data` is the (possibly trimmed) capture.
    pub fn write_packet(&mut self, ts: SimTime, data: &[u8], orig_len: usize) -> io::Result<()> {
        let ns = ts.as_nanos();
        let secs = (ns / 1_000_000_000) as u32;
        let nanos = (ns % 1_000_000_000) as u32;
        self.out.write_all(&secs.to_le_bytes())?;
        self.out.write_all(&nanos.to_le_bytes())?;
        self.out.write_all(&(data.len() as u32).to_le_bytes())?;
        self.out.write_all(&(orig_len as u32).to_le_bytes())?;
        self.out.write_all(data)?;
        self.packets += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Flush and return the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout() {
        let w = PcapWriter::new(Vec::new(), 128).unwrap();
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(u32::from_le_bytes(buf[0..4].try_into().unwrap()), PCAP_MAGIC_NS);
        assert_eq!(u16::from_le_bytes(buf[4..6].try_into().unwrap()), 2);
        assert_eq!(u16::from_le_bytes(buf[6..8].try_into().unwrap()), 4);
        assert_eq!(u32::from_le_bytes(buf[16..20].try_into().unwrap()), 128);
        assert_eq!(
            u32::from_le_bytes(buf[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn packet_record_layout() {
        let mut w = PcapWriter::new(Vec::new(), 128).unwrap();
        let ts = SimTime::from_secs(3) + SimTime::from_nanos(42);
        w.write_packet(ts, &[0xaa; 60], 1024).unwrap();
        assert_eq!(w.packets(), 1);
        let buf = w.finish().unwrap();
        let rec = &buf[24..];
        assert_eq!(u32::from_le_bytes(rec[0..4].try_into().unwrap()), 3);
        assert_eq!(u32::from_le_bytes(rec[4..8].try_into().unwrap()), 42);
        assert_eq!(u32::from_le_bytes(rec[8..12].try_into().unwrap()), 60);
        assert_eq!(u32::from_le_bytes(rec[12..16].try_into().unwrap()), 1024);
        assert_eq!(&rec[16..76], &[0xaa; 60]);
    }

    #[test]
    fn multiple_packets_append() {
        let mut w = PcapWriter::new(Vec::new(), 65535).unwrap();
        for i in 0..5u64 {
            w.write_packet(SimTime::from_micros(i), &[i as u8; 10], 10)
                .unwrap();
        }
        assert_eq!(w.packets(), 5);
        let buf = w.finish().unwrap();
        assert_eq!(buf.len(), 24 + 5 * (16 + 10));
    }
}
