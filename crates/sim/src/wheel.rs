//! Hierarchical timer wheel: the engine's event queue.
//!
//! A calendar queue in the style of kernel/tokio timer wheels: eleven
//! levels of 64 slots each, 6 bits of the nanosecond timestamp per level
//! (66 bits — the full `u64` range), so any future `SimTime` maps to
//! exactly one slot. Level 0 slots are one nanosecond wide; higher-level
//! slots *cascade* — when the wheel advances into one, its events are
//! re-filed into lower levels — until every event pops from level 0.
//!
//! Pop order is the engine's contract: strictly `(time, seq)`, where
//! `seq` is the monotonic sequence number the engine assigned at push.
//! All events in one level-0 slot share one timestamp (the slot is 1 ns
//! wide and the wheel's invariant pins the high bits), so the tie-break
//! is a min-`seq` scan of that slot. The scan is what makes cascading
//! safe: re-filing can append an *older* (lower-seq) event behind a
//! newer one, and a FIFO slot would then pop them out of order.
//!
//! Push and pop are O(levels) amortized — no comparison-heap log factor,
//! and no allocation beyond the slot vectors, which are recycled.

use std::fmt;

/// Bits of the timestamp consumed per level.
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels: ⌈64 / 6⌉ = 11 covers the whole u64 nanosecond range.
const LEVELS: usize = 64usize.div_ceil(LEVEL_BITS as usize);

/// One entry in the wheel: an opaque payload ordered by `(time, seq)`.
pub struct Entry<T> {
    /// Absolute nanosecond timestamp.
    pub time: u64,
    /// Engine-assigned monotonic tie-break.
    pub seq: u64,
    /// The payload.
    pub value: T,
}

struct Level<T> {
    slots: Vec<Vec<Entry<T>>>,
    /// Bit `i` set ⇔ `slots[i]` is non-empty.
    occupied: u64,
}

impl<T> Level<T> {
    fn new() -> Level<T> {
        Level {
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
        }
    }
}

/// The hierarchical wheel. Generic over the payload so the determinism
/// tests can drive it with plain markers.
pub struct TimerWheel<T> {
    levels: Vec<Level<T>>,
    /// The wheel's notion of "now": the timestamp of the last pop. All
    /// stored events satisfy `time >= elapsed`, and agree with `elapsed`
    /// on every bit group above their level — the invariant that makes
    /// "lowest occupied slot" mean "earliest event".
    elapsed: u64,
    len: usize,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel at time zero.
    pub fn new() -> TimerWheel<T> {
        TimerWheel {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            elapsed: 0,
            len: 0,
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Level an event at `when` files under, given the current `elapsed`:
    /// the highest 6-bit group in which the two differ (0 when equal).
    fn level_for(elapsed: u64, when: u64) -> usize {
        let masked = elapsed ^ when;
        if masked == 0 {
            0
        } else {
            (63 - masked.leading_zeros()) as usize / LEVEL_BITS as usize
        }
    }

    fn slot_for(when: u64, level: usize) -> usize {
        ((when >> (LEVEL_BITS as usize * level)) & (SLOTS as u64 - 1)) as usize
    }

    /// Queue an entry. `time` must not precede the last popped time; a
    /// stale timestamp is clamped to `elapsed` (matching what a
    /// comparison heap would do: pop it next).
    pub fn push(&mut self, mut entry: Entry<T>) {
        if entry.time < self.elapsed {
            debug_assert!(false, "event scheduled in the past");
            entry.time = self.elapsed;
        }
        self.file(entry);
        self.len += 1;
    }

    fn file(&mut self, entry: Entry<T>) {
        let level = Self::level_for(self.elapsed, entry.time);
        let slot = Self::slot_for(entry.time, level);
        let lv = &mut self.levels[level];
        lv.slots[slot].push(entry);
        lv.occupied |= 1 << slot;
    }

    /// Remove and return the earliest entry by `(time, seq)`.
    pub fn pop(&mut self) -> Option<Entry<T>> {
        if self.len == 0 {
            return None;
        }
        loop {
            // The lowest level with any occupancy holds the next event:
            // by the invariant, occupied slots sit at-or-ahead of the
            // current position within this rotation, and anything filed
            // at a higher level is strictly later than everything below.
            let level = (0..LEVELS).find(|&l| self.levels[l].occupied != 0)?;
            let slot = self.levels[level].occupied.trailing_zeros() as usize;
            if level == 0 {
                let bucket = &mut self.levels[0].slots[slot];
                // One L0 slot = one timestamp; tie-break by minimum seq.
                let min = bucket
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.seq)
                    .map(|(i, _)| i)
                    .expect("occupied slot is non-empty");
                let entry = bucket.swap_remove(min);
                if bucket.is_empty() {
                    self.levels[0].occupied &= !(1 << slot);
                }
                self.len -= 1;
                debug_assert!(entry.time >= self.elapsed);
                self.elapsed = entry.time;
                return Some(entry);
            }
            // Cascade: advance to the slot's base time and re-file its
            // events one level (or more) down.
            let shift = LEVEL_BITS as usize * level;
            // Bits above this level's group (the top level has none — its
            // group reaches past bit 63, so the mask would overshoot).
            let high = if shift + LEVEL_BITS as usize >= 64 {
                0
            } else {
                self.elapsed & !((1u64 << (shift + LEVEL_BITS as usize)) - 1)
            };
            let slot_base = high | ((slot as u64) << shift);
            debug_assert!(slot_base >= self.elapsed);
            self.elapsed = slot_base;
            let drained = std::mem::take(&mut self.levels[level].slots[slot]);
            self.levels[level].occupied &= !(1 << slot);
            for e in drained {
                self.file(e);
            }
        }
    }
}

impl<T> fmt::Debug for TimerWheel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TimerWheel")
            .field("len", &self.len)
            .field("elapsed", &self.elapsed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    fn drain(w: &mut TimerWheel<u32>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = w.pop() {
            out.push((e.time, e.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        for (seq, &t) in [500u64, 3, 0, 1_000_000_007, 64, 63, 4096].iter().enumerate() {
            w.push(Entry {
                time: t,
                seq: seq as u64,
                value: 0u32,
            });
        }
        let popped = drain(&mut w);
        let times: Vec<u64> = popped.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![0, 3, 63, 64, 500, 4096, 1_000_000_007]);
    }

    #[test]
    fn same_timestamp_pops_in_push_order() {
        // The FIFO guarantee the engine's golden reports rest on.
        let mut w = TimerWheel::new();
        for seq in 0..100u64 {
            w.push(Entry {
                time: 777,
                seq,
                value: 0u32,
            });
        }
        let popped = drain(&mut w);
        assert_eq!(
            popped.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cascaded_ties_still_pop_by_seq() {
        // An early-pushed event parked at a high level cascades into the
        // same L0 slot as a later-pushed event with the same timestamp —
        // the min-seq scan must still pop the older one first.
        let mut w = TimerWheel::new();
        w.push(Entry { time: 100_000, seq: 0, value: 0u32 }); // files high
        w.push(Entry { time: 5, seq: 1, value: 0u32 });
        let first = w.pop().unwrap();
        assert_eq!((first.time, first.seq), (5, 1));
        // Now elapsed = 5; push a same-time rival with a later seq.
        w.push(Entry { time: 100_000, seq: 2, value: 0u32 });
        let a = w.pop().unwrap();
        let b = w.pop().unwrap();
        assert_eq!((a.time, a.seq), (100_000, 0));
        assert_eq!((b.time, b.seq), (100_000, 2));
    }

    #[test]
    fn interleaved_push_pop_advances_monotonically() {
        let mut w = TimerWheel::new();
        w.push(Entry { time: 10, seq: 0, value: 0u32 });
        assert_eq!(w.pop().unwrap().time, 10);
        // Pushing "now" after advancing is legal and pops immediately.
        w.push(Entry { time: 10, seq: 1, value: 0u32 });
        w.push(Entry { time: 11, seq: 2, value: 0u32 });
        assert_eq!(w.pop().unwrap().seq, 1);
        assert_eq!(w.pop().unwrap().seq, 2);
        assert!(w.is_empty());
    }

    /// Reference implementation: sort by `(time, seq)`.
    #[test]
    fn matches_reference_on_random_workloads() {
        let mut rng = SimRng::seed_from_u64(0x5eed);
        for _ in 0..50 {
            let mut w = TimerWheel::new();
            let mut reference: Vec<(u64, u64)> = Vec::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            let mut popped = Vec::new();
            for _ in 0..400 {
                if rng.below(3) > 0 || reference.is_empty() {
                    // Push: times cluster near `now` with occasional
                    // far-future spikes to exercise high levels.
                    let t = if rng.below(10) == 0 {
                        now + rng.below(10_000_000_000)
                    } else {
                        now + rng.below(2_000)
                    };
                    w.push(Entry { time: t, seq, value: 0u32 });
                    reference.push((t, seq));
                    seq += 1;
                } else {
                    let got = w.pop().unwrap();
                    reference.sort();
                    let want = reference.remove(0);
                    assert_eq!((got.time, got.seq), want);
                    now = got.time;
                    popped.push(want);
                }
            }
            let mut rest = drain(&mut w);
            reference.sort();
            rest.sort();
            assert_eq!(rest, reference);
        }
    }

    #[test]
    fn far_future_and_max_times() {
        let mut w = TimerWheel::new();
        w.push(Entry { time: u64::MAX, seq: 0, value: 0u32 });
        w.push(Entry { time: u64::MAX - 1, seq: 1, value: 0u32 });
        w.push(Entry { time: 1, seq: 2, value: 0u32 });
        assert_eq!(w.pop().unwrap().time, 1);
        assert_eq!(w.pop().unwrap().time, u64::MAX - 1);
        assert_eq!(w.pop().unwrap().time, u64::MAX);
        assert!(w.pop().is_none());
    }
}
