//! The event loop: nodes, ports, timers, and deterministic dispatch.

use crate::faults::{ChaosFate, ChaosPlane, ChaosStats, FaultPlane, FaultStats, TransmitFate};
use crate::link::{Link, LinkState};
use crate::rng::SimRng;
use crate::time::{Bandwidth, SimTime};
use crate::wheel::{Entry, TimerWheel};
use crate::Node;
use lumina_packet::buf::{self, CounterSnapshot};
use lumina_packet::Frame;
use lumina_telemetry::trace::hops as trace_hops;
use lumina_telemetry::{tev, MetricSet, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Identifies a node within an [`Engine`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

/// Identifies a port on a node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct PortId(pub usize);

#[derive(Debug)]
enum EventKind {
    FrameArrive { port: PortId, frame: Frame },
    Timer { token: u64 },
}

/// The payload filed in the timer wheel; ordering — `(time, seq)` with
/// `seq` the monotonic push counter — lives in the wheel's [`Entry`].
struct EventBody {
    node: NodeId,
    kind: EventKind,
}

/// Counters the engine accumulates during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Frames delivered to nodes.
    pub frames_delivered: u64,
    /// Frame bytes delivered (wire bytes, excluding line overhead).
    pub frame_bytes_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Total events processed.
    pub events: u64,
}

impl MetricSet for EngineStats {
    fn metric_kind(&self) -> &'static str {
        "engine"
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("EngineStats serializes")
    }
}

/// Packet-plane allocation/copy accounting for one run: the per-run delta
/// of `lumina_packet::buf`'s thread-local counters, baselined when the
/// engine is constructed.
///
/// Kept **out** of the golden `report_json` telemetry snapshot on purpose
/// (the orchestrator does not record it during `run_test`); it is surfaced
/// through [`TestResults`]-style carriers, the `telemetry` CLI subcommand,
/// and the `hotpath` bench, where `bytes_copied + bytes_shared` is the
/// copy bill of the old owned-`Vec<u8>`-per-hop design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Distinct frame buffers created.
    pub frames_allocated: u64,
    /// Bytes backing those buffers.
    pub bytes_allocated: u64,
    /// Bytes physically memcpy'd (serialization payloads, copy-on-write
    /// mutations, trimmed captures).
    pub bytes_copied: u64,
    /// Frame hand-offs that shared the buffer instead of copying.
    pub frames_shared: u64,
    /// Bytes passed or scanned in place where the old design copied.
    pub bytes_shared: u64,
    /// High-water mark of distinct buffers alive at once.
    pub peak_live_frames: u64,
}

impl FrameStats {
    fn delta(base: &CounterSnapshot) -> FrameStats {
        let now = buf::counters();
        FrameStats {
            frames_allocated: now.frames_allocated - base.frames_allocated,
            bytes_allocated: now.bytes_allocated - base.bytes_allocated,
            bytes_copied: now.bytes_copied - base.bytes_copied,
            frames_shared: now.frames_shared - base.frames_shared,
            bytes_shared: now.bytes_shared - base.bytes_shared,
            peak_live_frames: now.peak_live_frames.saturating_sub(base.live_frames),
        }
    }
}

impl MetricSet for FrameStats {
    fn metric_kind(&self) -> &'static str {
        "frames"
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("FrameStats serializes")
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The event queue drained: the network went quiescent.
    Quiescent {
        /// Time of the last processed event.
        end: SimTime,
    },
    /// The configured time horizon was reached with events still pending.
    HorizonReached {
        /// The horizon.
        end: SimTime,
    },
    /// The event-count safety limit tripped (likely a livelock bug).
    EventLimit {
        /// Time at which the limit tripped.
        end: SimTime,
    },
    /// The wall-clock watchdog ([`Engine::wall_clock_limit`]) tripped: the
    /// run burned more real time than the supervisor allowed.
    WallClockExceeded {
        /// Simulation time at which the watchdog fired.
        end: SimTime,
    },
}

impl RunOutcome {
    /// Final simulation time regardless of the outcome variant.
    pub fn end_time(self) -> SimTime {
        match self {
            RunOutcome::Quiescent { end }
            | RunOutcome::HorizonReached { end }
            | RunOutcome::EventLimit { end }
            | RunOutcome::WallClockExceeded { end } => end,
        }
    }

    /// True if the network quiesced.
    pub fn is_quiescent(self) -> bool {
        matches!(self, RunOutcome::Quiescent { .. })
    }
}

/// The discrete-event engine.
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: TimerWheel<EventBody>,
    /// Next event, pre-popped so the run loop can peek at its time for
    /// the horizon check without disturbing the wheel.
    next: Option<Entry<EventBody>>,
    nodes: Vec<Option<Box<dyn Node>>>,
    links: HashMap<(NodeId, PortId), LinkState>,
    rng: SimRng,
    stats: EngineStats,
    /// Packet-plane counter baseline taken at construction; per-run
    /// [`FrameStats`] are deltas against it.
    frame_baseline: CounterSnapshot,
    telemetry: Telemetry,
    queue_hwm: usize,
    /// Safety valve against livelocked simulations.
    pub event_limit: u64,
    /// Wall-clock watchdog: checked every few thousand events; tripping
    /// it ends the run with [`RunOutcome::WallClockExceeded`]. `None`
    /// (the default) disables the check entirely, keeping fault-free runs
    /// on the exact code path the goldens were recorded on.
    pub wall_clock_limit: Option<Duration>,
    /// Attached infrastructure fault plane, if any.
    faults: Option<FaultPlane>,
    /// Attached data-path chaos plane, if any.
    chaos: Option<ChaosPlane>,
}

impl Engine {
    /// Create an engine with the given RNG seed.
    pub fn new(seed: u64) -> Engine {
        buf::reset_peak();
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            next: None,
            nodes: Vec::new(),
            links: HashMap::new(),
            rng: SimRng::seed_from_u64(seed),
            stats: EngineStats::default(),
            frame_baseline: buf::counters(),
            telemetry: Telemetry::disabled(),
            queue_hwm: 0,
            event_limit: 500_000_000,
            wall_clock_limit: None,
            faults: None,
            chaos: None,
        }
    }

    /// Attach an infrastructure fault plane. The plane's RNG is its own
    /// seeded stream, so attaching one never perturbs the engine RNG; an
    /// engine without a plane takes no fault branches at all.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.faults = Some(plane);
    }

    /// The attached fault plane's counters, if a plane is attached.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(|p| p.stats)
    }

    /// Attach a data-path chaos plane. Like the fault plane it owns its
    /// seeded RNG stream, and every transmit on an uncovered link bypasses
    /// it without a draw — a chaos-free run replays byte-identically.
    pub fn set_chaos_plane(&mut self, plane: ChaosPlane) {
        self.chaos = Some(plane);
    }

    /// The attached chaos plane's counters, if a plane is attached.
    pub fn chaos_stats(&self) -> Option<ChaosStats> {
        self.chaos.as_ref().map(|p| p.stats)
    }

    /// Attach a telemetry sink. Nodes reach it through
    /// [`NodeCtx::telemetry`]; the engine itself reports its stats and
    /// queue high-water mark into it at the end of each run. The default
    /// sink is disabled, making every recording call a cheap no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry sink (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Packet-plane allocation/copy counters accumulated on this thread
    /// since the engine was constructed.
    pub fn frame_stats(&self) -> FrameStats {
        FrameStats::delta(&self.frame_baseline)
    }

    /// Borrow the engine's root RNG (e.g. to fork node-local streams
    /// during setup).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    /// Connect `a:pa` and `b:pb` with a full-duplex link.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        bandwidth: Bandwidth,
        propagation: SimTime,
    ) {
        let fwd = Link {
            to_node: b,
            to_port: pb,
            bandwidth,
            propagation,
        };
        let rev = Link {
            to_node: a,
            to_port: pa,
            bandwidth,
            propagation,
        };
        let dup_f = self.links.insert((a, pa), LinkState::new(fwd));
        let dup_r = self.links.insert((b, pb), LinkState::new(rev));
        assert!(
            dup_f.is_none() && dup_r.is_none(),
            "port already connected: {a:?}:{pa:?} or {b:?}:{pb:?}"
        );
    }

    /// Inspect a link's egress state (for diagnostics and tests).
    pub fn link_state(&self, node: NodeId, port: PortId) -> Option<&LinkState> {
        self.links.get(&(node, port))
    }

    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        // A stashed peek (e.g. left by a horizon break) must compete with
        // the new event — return it to the wheel first.
        if let Some(stashed) = self.next.take() {
            self.queue.push(stashed);
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time: time.as_nanos(),
            seq,
            value: EventBody { node, kind },
        });
        self.queue_hwm = self.queue_hwm.max(self.queue.len());
    }

    /// The next event by `(time, seq)`, pre-popped from the wheel so its
    /// time can be inspected for the horizon check.
    fn peek_next(&mut self) -> Option<&Entry<EventBody>> {
        if self.next.is_none() {
            self.next = self.queue.pop();
        }
        self.next.as_ref()
    }

    /// Schedule an initial timer for `node` at absolute time `at` — used
    /// during setup to kick applications off.
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push(at, node, EventKind::Timer { token });
    }

    /// Inject a frame arriving at `node:port` at absolute time `at` — used
    /// by tests to drive single nodes without a peer.
    pub fn inject_frame(&mut self, node: NodeId, port: PortId, at: SimTime, frame: Frame) {
        self.push(at, node, EventKind::FrameArrive { port, frame });
    }

    /// Run until the queue drains, `horizon` passes, or the event limit
    /// trips. Afterwards every node's [`Node::on_finish`] hook runs once.
    pub fn run(&mut self, horizon: Option<SimTime>) -> RunOutcome {
        let wall_start = self.wall_clock_limit.map(|_| Instant::now());
        let outcome = loop {
            if self.stats.events >= self.event_limit {
                break RunOutcome::EventLimit { end: self.now };
            }
            if let (Some(limit), Some(start)) = (self.wall_clock_limit, wall_start) {
                // Checked once per few thousand events: cheap enough to
                // leave on, coarse enough not to perturb throughput.
                if self.stats.events & 0xfff == 0 && start.elapsed() >= limit {
                    break RunOutcome::WallClockExceeded { end: self.now };
                }
            }
            let Some(ev) = self.peek_next() else {
                break RunOutcome::Quiescent { end: self.now };
            };
            let ev_time = SimTime::from_nanos(ev.time);
            if let Some(h) = horizon {
                if ev_time > h {
                    self.now = h;
                    break RunOutcome::HorizonReached { end: h };
                }
            }
            let ev = self.next.take().expect("peeked event is stashed");
            debug_assert!(ev_time >= self.now, "time went backwards");
            self.now = ev_time;
            self.stats.events += 1;
            // Frozen node? Frames are lost outright (the NIC is down);
            // timers survive the outage and fire at the thaw instant —
            // the restart half of freeze/restart.
            if let Some(plane) = self.faults.as_ref() {
                if let Some(until) = plane.frozen_until(ev.value.node, ev_time) {
                    let node = ev.value.node;
                    let plane = self.faults.as_mut().expect("plane checked above");
                    match ev.value.kind {
                        EventKind::FrameArrive { .. } => {
                            plane.stats.frames_dropped_frozen += 1;
                            tev!(
                                &self.telemetry,
                                ev_time.as_nanos(),
                                node.0 as u32,
                                "fault",
                                "freeze.drop",
                            );
                            continue;
                        }
                        EventKind::Timer { token } => {
                            plane.stats.timers_deferred += 1;
                            tev!(
                                &self.telemetry,
                                ev_time.as_nanos(),
                                node.0 as u32,
                                "fault",
                                "freeze.defer",
                                until = until.as_nanos(),
                            );
                            self.push(until, node, EventKind::Timer { token });
                            continue;
                        }
                    }
                }
            }
            self.dispatch(ev.value);
        };
        // Final flush pass.
        for i in 0..self.nodes.len() {
            let mut node = self.nodes[i].take().expect("node missing in finish");
            let mut effects = Effects::default();
            {
                let mut ctx = NodeCtx {
                    id: NodeId(i),
                    now: self.now,
                    rng: &mut self.rng,
                    effects: &mut effects,
                    telemetry: &self.telemetry,
                };
                node.on_finish(&mut ctx);
            }
            self.nodes[i] = Some(node);
            // Effects at finish are discarded by design: the run is over.
        }
        if self.telemetry.is_enabled() {
            self.telemetry.record_global_set(&self.stats);
            let (hwm, events) = (self.queue_hwm as u64, self.stats.events);
            let peak = self.frame_stats().peak_live_frames;
            self.telemetry.with_profile(|p| {
                p.queue_depth_hwm = p.queue_depth_hwm.max(hwm);
                p.sim_events_dispatched = events;
                p.peak_live_frames = p.peak_live_frames.max(peak);
            });
        }
        outcome
    }

    fn dispatch(&mut self, ev: EventBody) {
        let idx = ev.node.0;
        let mut node = self.nodes[idx]
            .take()
            .unwrap_or_else(|| panic!("node {idx} missing (re-entrant dispatch?)"));
        let mut effects = Effects::default();
        {
            let mut ctx = NodeCtx {
                id: ev.node,
                now: self.now,
                rng: &mut self.rng,
                effects: &mut effects,
                telemetry: &self.telemetry,
            };
            match ev.kind {
                EventKind::FrameArrive { port, frame } => {
                    self.stats.frames_delivered += 1;
                    self.stats.frame_bytes_delivered += frame.len() as u64;
                    self.telemetry.record_hop(
                        frame.trace_id(),
                        trace_hops::LINK_INGRESS,
                        ev.node.0 as u32,
                        self.now.as_nanos(),
                    );
                    node.on_frame(port, frame, &mut ctx);
                }
                EventKind::Timer { token } => {
                    self.stats.timers_fired += 1;
                    node.on_timer(token, &mut ctx);
                }
            }
        }
        self.nodes[idx] = Some(node);
        self.apply(ev.node, effects);
    }

    fn apply(&mut self, from: NodeId, effects: Effects) {
        for (port, frame, depart_delay) in effects.sends {
            let key = (from, port);
            // Marked links (mirror paths) consult the fault plane; every
            // other link bypasses it without touching the plane RNG.
            let mut copies = 1usize;
            if let Some(plane) = self.faults.as_mut() {
                if plane.covers_link(from, port) {
                    match plane.fate(from, port) {
                        TransmitFate::Deliver => {}
                        TransmitFate::Drop => {
                            tev!(
                                &self.telemetry,
                                self.now.as_nanos(),
                                from.0 as u32,
                                "fault",
                                "mirror.drop",
                            );
                            continue;
                        }
                        TransmitFate::Duplicate => {
                            tev!(
                                &self.telemetry,
                                self.now.as_nanos(),
                                from.0 as u32,
                                "fault",
                                "mirror.dup",
                            );
                            copies = 2;
                        }
                    }
                }
            }
            // Chaos-covered links (host↔switch data paths) consult the
            // chaos plane; everything else bypasses it without a draw.
            let chaos_covered = self
                .chaos
                .as_ref()
                .is_some_and(|p| p.covers_link(from, port));
            // In the single-copy case the frame is moved, never cloned —
            // the frame-plane counters of fault-free runs are untouched.
            let mut remaining = Some(frame);
            for copy in 0..copies {
                let is_last = copy + 1 == copies;
                let mut f = if is_last {
                    remaining.take().expect("frame still held")
                } else {
                    remaining.as_ref().expect("frame still held").clone()
                };
                let line_bytes = lumina_packet::frame::line_occupancy_of(f.len());
                let mut handoff = self.now + depart_delay;
                if chaos_covered {
                    // PFC-style pause: the handoff stalls to the window's
                    // end; the frame then serializes normally — stalled,
                    // never dropped.
                    let plane = self.chaos.as_mut().expect("chaos cover checked");
                    if let Some(resume) = plane.pause_until(from, port, handoff) {
                        tev!(
                            &self.telemetry,
                            self.now.as_nanos(),
                            from.0 as u32,
                            "chaos",
                            "pause",
                            until = resume.as_nanos(),
                        );
                        handoff = resume;
                    }
                }
                let Some(link) = self.links.get_mut(&key) else {
                    panic!("node {from:?} sent on unconnected port {port:?}");
                };
                self.telemetry.record_hop(
                    f.trace_id(),
                    trace_hops::LINK_EGRESS,
                    from.0 as u32,
                    handoff.as_nanos(),
                );
                // A duplicate serializes behind the original, like a
                // link-layer replay.
                let mut arrive = link.transmit(handoff, line_bytes);
                let (to_node, to_port) = (link.link.to_node, link.link.to_port);
                if chaos_covered {
                    let plane = self.chaos.as_mut().expect("chaos cover checked");
                    match plane.fate(from, port, handoff, arrive, f.len()) {
                        ChaosFate::Deliver => {}
                        ChaosFate::FlapDrop => {
                            // The link is down at handoff or arrival: the
                            // frame burned its serialization slot and died
                            // on the wire.
                            tev!(
                                &self.telemetry,
                                handoff.as_nanos(),
                                from.0 as u32,
                                "chaos",
                                "flap.drop",
                            );
                            continue;
                        }
                        ChaosFate::BurstDrop => {
                            tev!(
                                &self.telemetry,
                                handoff.as_nanos(),
                                from.0 as u32,
                                "chaos",
                                "burst.drop",
                            );
                            continue;
                        }
                        ChaosFate::Corrupt { offset, mask } => {
                            tev!(
                                &self.telemetry,
                                handoff.as_nanos(),
                                from.0 as u32,
                                "chaos",
                                "corrupt",
                                offset = offset as u64,
                            );
                            let buf = f.make_mut();
                            if let Some(b) = buf.get_mut(offset) {
                                *b ^= mask;
                            }
                        }
                        ChaosFate::Delay(extra) => {
                            tev!(
                                &self.telemetry,
                                handoff.as_nanos(),
                                from.0 as u32,
                                "chaos",
                                "delay",
                                extra = extra.as_nanos(),
                            );
                            arrive += extra;
                        }
                    }
                }
                self.push(arrive, to_node, EventKind::FrameArrive {
                    port: to_port,
                    frame: f,
                });
            }
        }
        for (at, token) in effects.timers {
            self.push(at, from, EventKind::Timer { token });
        }
    }

    /// Take a node back out of the engine (after a run) for inspection.
    /// Panics if `id` is out of range.
    pub fn remove_node(&mut self, id: NodeId) -> Box<dyn Node> {
        self.nodes[id.0].take().expect("node already removed")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Default)]
struct Effects {
    sends: Vec<(PortId, Frame, SimTime)>,
    timers: Vec<(SimTime, u64)>,
}

/// The context handed to a node during dispatch. All interaction with the
/// world — sending frames, arming timers, drawing randomness — goes through
/// this.
pub struct NodeCtx<'a> {
    id: NodeId,
    now: SimTime,
    rng: &'a mut SimRng,
    effects: &'a mut Effects,
    telemetry: &'a Telemetry,
}

impl NodeCtx<'_> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The engine's telemetry sink (disabled unless the embedder
    /// attached one via [`Engine::set_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// This node's id as the plain integer telemetry uses.
    pub fn telemetry_node(&self) -> u32 {
        self.id.0 as u32
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Hand a frame to the egress side of `port` now. The frame is moved,
    /// not copied — senders keeping a reference clone the handle (an
    /// `Arc` bump), never the bytes.
    pub fn send(&mut self, port: PortId, frame: Frame) {
        self.effects.sends.push((port, frame, SimTime::ZERO));
    }

    /// Hand a frame to the egress side of `port` after an internal
    /// processing delay (e.g. the switch pipeline's ~0.4 µs).
    pub fn send_after(&mut self, port: PortId, frame: Frame, delay: SimTime) {
        self.effects.sends.push((port, frame, delay));
    }

    /// Arm a timer `delay` from now; `token` comes back in
    /// [`Node::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.effects.timers.push((self.now + delay, token));
    }

    /// Arm a timer at an absolute time.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        debug_assert!(at >= self.now);
        self.effects.timers.push((at, token));
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumina_packet::builder::DataPacketBuilder;
    use lumina_packet::opcode::Opcode;

    /// Echoes every arriving frame back out the same port after a delay.
    struct Echo {
        delay: SimTime,
        received: Vec<(SimTime, usize)>,
    }

    impl Node for Echo {
        fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut NodeCtx<'_>) {
            self.received.push((ctx.now(), frame.len()));
            ctx.send_after(port, frame, self.delay);
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_>) {}
        fn name(&self) -> &str {
            "echo"
        }
    }

    /// Sends `count` frames at t=0 and records arrival times of echoes.
    struct Blaster {
        count: usize,
        frame: Frame,
        echoes: Vec<SimTime>,
    }

    impl Node for Blaster {
        fn on_frame(&mut self, _port: PortId, _frame: Frame, ctx: &mut NodeCtx<'_>) {
            self.echoes.push(ctx.now());
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx<'_>) {
            for _ in 0..self.count {
                ctx.send(PortId(0), self.frame.clone());
            }
        }
        fn name(&self) -> &str {
            "blaster"
        }
    }

    fn test_frame() -> Frame {
        DataPacketBuilder::new()
            .opcode(Opcode::SendOnly)
            .payload_len(1000)
            .build()
            .emit()
    }

    #[test]
    fn ping_pong_timing() {
        let mut eng = Engine::new(1);
        let frame = test_frame();
        let flen = frame.len();
        let blaster = eng.add_node(Box::new(Blaster {
            count: 1,
            frame,
            echoes: vec![],
        }));
        let echo = eng.add_node(Box::new(Echo {
            delay: SimTime::from_nanos(100),
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            echo,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(500),
        );
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        let outcome = eng.run(None);
        assert!(outcome.is_quiescent());

        let ser = Bandwidth::gbps(100)
            .serialization_time(lumina_packet::frame::line_occupancy_of(flen));
        let one_way = ser + SimTime::from_nanos(500);
        let expect = one_way + SimTime::from_nanos(100) + one_way;

        let b: Box<dyn Node> = eng.remove_node(blaster);
        // SAFETY of downcast: we know what we inserted. Use raw pointer cast
        // via Box into raw — instead, keep it simple and re-run assertions
        // through stats.
        drop(b);
        assert_eq!(eng.stats().frames_delivered, 2);
        assert_eq!(outcome.end_time(), expect);
    }

    #[test]
    fn serialization_paces_burst() {
        let mut eng = Engine::new(1);
        let frame = test_frame();
        let blaster = eng.add_node(Box::new(Blaster {
            count: 10,
            frame: frame.clone(),
            echoes: vec![],
        }));
        let echo = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            echo,
            PortId(0),
            Bandwidth::gbps(10),
            SimTime::from_nanos(1000),
        );
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        eng.run(None);
        // Echo must have received 10 frames spaced by one serialization
        // time each.
        let ser = Bandwidth::gbps(10)
            .serialization_time(lumina_packet::frame::line_occupancy_of(frame.len()));
        assert_eq!(eng.stats().frames_delivered, 20);
        let _ = ser;
    }

    #[test]
    fn horizon_stops_run() {
        let mut eng = Engine::new(1);
        struct Ticker;
        impl Node for Ticker {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimTime::from_micros(1), t + 1);
            }
        }
        let n = eng.add_node(Box::new(Ticker));
        eng.schedule_timer(n, SimTime::ZERO, 0);
        let outcome = eng.run(Some(SimTime::from_millis(1)));
        assert!(matches!(outcome, RunOutcome::HorizonReached { .. }));
        assert_eq!(outcome.end_time(), SimTime::from_millis(1));
        // ~1000 timer fires in 1ms at 1us cadence.
        assert!((995..=1001).contains(&eng.stats().timers_fired));
    }

    #[test]
    fn event_limit_trips() {
        let mut eng = Engine::new(1);
        struct Spinner;
        impl Node for Spinner {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, ctx: &mut NodeCtx<'_>) {
                // Zero-delay self-timer: a livelock.
                ctx.set_timer(SimTime::ZERO, t);
            }
        }
        let n = eng.add_node(Box::new(Spinner));
        eng.schedule_timer(n, SimTime::ZERO, 0);
        eng.event_limit = 10_000;
        let outcome = eng.run(None);
        assert!(matches!(outcome, RunOutcome::EventLimit { .. }));
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> (EngineStats, SimTime) {
            let mut eng = Engine::new(42);
            let frame = test_frame();
            let blaster = eng.add_node(Box::new(Blaster {
                count: 50,
                frame,
                echoes: vec![],
            }));
            let echo = eng.add_node(Box::new(Echo {
                delay: SimTime::from_nanos(37),
                received: vec![],
            }));
            eng.connect(
                blaster,
                PortId(0),
                echo,
                PortId(0),
                Bandwidth::gbps(40),
                SimTime::from_nanos(750),
            );
            eng.schedule_timer(blaster, SimTime::ZERO, 0);
            let o = eng.run(None);
            (*eng.stats(), o.end_time())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn same_timestamp_events_dispatch_in_schedule_order() {
        // FIFO among ties is what keeps pop order — and every golden
        // report — byte-identical across queue implementations.
        struct Recorder {
            tokens: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Node for Recorder {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, _: &mut NodeCtx<'_>) {
                self.tokens.borrow_mut().push(t);
            }
        }
        let mut eng = Engine::new(7);
        let tokens = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let n = eng.add_node(Box::new(Recorder {
            tokens: tokens.clone(),
        }));
        let t = SimTime::from_micros(3);
        for token in 0..64u64 {
            eng.schedule_timer(n, t, token);
        }
        // A later-scheduled earlier event must still come first.
        eng.schedule_timer(n, SimTime::from_nanos(1), 999);
        eng.run(None);
        let got = tokens.borrow().clone();
        let mut want = vec![999u64];
        want.extend(0..64);
        assert_eq!(got, want);
    }

    #[test]
    fn frame_stats_track_shares_and_copies() {
        // Serialize before the engine takes its counter baseline, so the
        // delta shows pure frame-plane traffic.
        let frame = test_frame();
        let mut eng = Engine::new(9);
        let blaster = eng.add_node(Box::new(Blaster {
            count: 20,
            frame,
            echoes: vec![],
        }));
        let echo = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            echo,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(100),
        );
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        eng.run(None);
        let fs = eng.frame_stats();
        // The blaster clones one frame 20 times; the echo bounces the
        // handles back without any new allocation or copy.
        assert!(fs.frames_shared >= 20, "{fs:?}");
        assert!(fs.bytes_shared >= 20 * 1000, "{fs:?}");
        assert_eq!(fs.bytes_copied, 0, "no mutation, no copies: {fs:?}");
        // The one buffer predates the baseline and no new buffer is ever
        // allocated — the peak *delta* is therefore zero.
        assert_eq!(fs.frames_allocated, 0, "{fs:?}");
        assert_eq!(fs.peak_live_frames, 0, "{fs:?}");
    }

    #[test]
    fn marked_link_drops_and_duplicates_deterministically() {
        use crate::faults::{FaultPlane, MirrorFaults};
        let run = || {
            let mut eng = Engine::new(5);
            let blaster = eng.add_node(Box::new(Blaster {
                count: 200,
                frame: test_frame(),
                echoes: vec![],
            }));
            let sink = eng.add_node(Box::new(Echo {
                delay: SimTime::ZERO,
                received: vec![],
            }));
            eng.connect(
                blaster,
                PortId(0),
                sink,
                PortId(0),
                Bandwidth::gbps(100),
                SimTime::from_nanos(100),
            );
            let mut plane = FaultPlane::new(
                9,
                MirrorFaults {
                    loss_prob: 0.25,
                    dup_prob: 0.1,
                },
            );
            plane.mark_mirror_link(blaster, PortId(0));
            // Return path is unmarked: echoes flow back untouched.
            eng.set_fault_plane(plane);
            eng.schedule_timer(blaster, SimTime::ZERO, 0);
            eng.run(None);
            let stats = eng.fault_stats().expect("plane attached");
            (*eng.stats(), stats)
        };
        let (eng_stats, faults) = run();
        assert!(faults.mirror_copies_dropped > 0, "{faults:?}");
        assert!(faults.mirror_copies_duplicated > 0, "{faults:?}");
        // Dropped copies never arrive; duplicates arrive twice; every
        // survivor is echoed back across the unmarked reverse link.
        let delivered_forward =
            200 - faults.mirror_copies_dropped + faults.mirror_copies_duplicated;
        assert_eq!(eng_stats.frames_delivered, delivered_forward * 2);
        assert_eq!(run(), (eng_stats, faults), "fault schedule must replay");
    }

    #[test]
    fn frozen_node_loses_frames_and_defers_timers() {
        use crate::faults::{FaultPlane, FreezeWindow, MirrorFaults};
        // A ticker timer armed inside the freeze window must fire at the
        // thaw instant, not during the outage.
        struct Once {
            fired_at: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
        }
        impl Node for Once {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, _t: u64, ctx: &mut NodeCtx<'_>) {
                self.fired_at.borrow_mut().push(ctx.now());
            }
        }
        let mut eng = Engine::new(1);
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let n = eng.add_node(Box::new(Once {
            fired_at: fired.clone(),
        }));
        let mut plane = FaultPlane::new(1, MirrorFaults::default());
        plane.add_freeze(FreezeWindow {
            node: n,
            from: SimTime::from_micros(10),
            until: SimTime::from_micros(50),
        });
        eng.set_fault_plane(plane);
        eng.schedule_timer(n, SimTime::from_micros(5), 0); // before: fires
        eng.schedule_timer(n, SimTime::from_micros(20), 1); // inside: deferred
        eng.inject_frame(n, PortId(0), SimTime::from_micros(30), test_frame()); // lost
        eng.run(None);
        assert_eq!(
            *fired.borrow(),
            vec![SimTime::from_micros(5), SimTime::from_micros(50)]
        );
        let stats = eng.fault_stats().unwrap();
        assert_eq!(stats.timers_deferred, 1);
        assert_eq!(stats.frames_dropped_frozen, 1);
        assert_eq!(eng.stats().frames_delivered, 0);
    }

    #[test]
    fn chaos_flap_drops_in_flight_frames_and_replays() {
        use crate::faults::{ChaosPlane, ChaosWindow, LinkChaos};
        let run = || {
            let mut eng = Engine::new(5);
            let blaster = eng.add_node(Box::new(Blaster {
                count: 50,
                frame: test_frame(),
                echoes: vec![],
            }));
            let sink = eng.add_node(Box::new(Echo {
                delay: SimTime::ZERO,
                received: vec![],
            }));
            eng.connect(
                blaster,
                PortId(0),
                sink,
                PortId(0),
                Bandwidth::gbps(10),
                SimTime::from_nanos(500),
            );
            let mut plane = ChaosPlane::new(9);
            plane.set_link(
                blaster,
                PortId(0),
                LinkChaos {
                    flaps: vec![ChaosWindow {
                        from: SimTime::from_micros(1),
                        until: SimTime::from_micros(3),
                    }],
                    ..LinkChaos::default()
                },
            );
            eng.set_chaos_plane(plane);
            eng.schedule_timer(blaster, SimTime::ZERO, 0);
            eng.run(None);
            let stats = eng.chaos_stats().expect("plane attached");
            (*eng.stats(), stats)
        };
        let (eng_stats, chaos) = run();
        assert!(chaos.flap_drops > 0, "{chaos:?}");
        // Dropped frames never arrive, and survivors echo back over the
        // uncovered reverse link.
        let survivors = 50 - chaos.flap_drops;
        assert_eq!(eng_stats.frames_delivered, survivors * 2);
        assert_eq!(run(), (eng_stats, chaos), "chaos schedule must replay");
    }

    #[test]
    fn chaos_pause_delays_without_loss() {
        use crate::faults::{ChaosPlane, ChaosWindow, LinkChaos};
        let mut eng = Engine::new(5);
        let blaster = eng.add_node(Box::new(Blaster {
            count: 5,
            frame: test_frame(),
            echoes: vec![],
        }));
        let sink = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            sink,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(100),
        );
        let mut plane = ChaosPlane::new(1);
        plane.set_link(
            blaster,
            PortId(0),
            LinkChaos {
                pauses: vec![ChaosWindow {
                    from: SimTime::ZERO,
                    until: SimTime::from_micros(50),
                }],
                ..LinkChaos::default()
            },
        );
        eng.set_chaos_plane(plane);
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        let outcome = eng.run(None);
        assert!(outcome.is_quiescent());
        let chaos = eng.chaos_stats().unwrap();
        assert_eq!(chaos.paused_frames, 5);
        assert_eq!(chaos.data_drops(), 0, "pause must not drop: {chaos:?}");
        // All five frames arrive (and echo back), but only after the pause.
        assert_eq!(eng.stats().frames_delivered, 10);
        assert!(outcome.end_time() >= SimTime::from_micros(50));
    }

    #[test]
    fn chaos_free_plane_leaves_runs_byte_identical() {
        use crate::faults::ChaosPlane;
        let run = |attach: bool| {
            let mut eng = Engine::new(42);
            let blaster = eng.add_node(Box::new(Blaster {
                count: 50,
                frame: test_frame(),
                echoes: vec![],
            }));
            let echo = eng.add_node(Box::new(Echo {
                delay: SimTime::from_nanos(37),
                received: vec![],
            }));
            eng.connect(
                blaster,
                PortId(0),
                echo,
                PortId(0),
                Bandwidth::gbps(40),
                SimTime::from_nanos(750),
            );
            if attach {
                // A plane with no covered links: every transmit bypasses
                // it without a draw.
                eng.set_chaos_plane(ChaosPlane::new(7));
            }
            eng.schedule_timer(blaster, SimTime::ZERO, 0);
            let o = eng.run(None);
            (*eng.stats(), o.end_time())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn wall_clock_watchdog_trips_on_a_livelock() {
        let mut eng = Engine::new(1);
        struct Spinner;
        impl Node for Spinner {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimTime::ZERO, t);
            }
        }
        let n = eng.add_node(Box::new(Spinner));
        eng.schedule_timer(n, SimTime::ZERO, 0);
        eng.wall_clock_limit = Some(Duration::from_millis(20));
        let outcome = eng.run(None);
        assert!(
            matches!(outcome, RunOutcome::WallClockExceeded { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    #[should_panic(expected = "unconnected port")]
    fn send_on_unconnected_port_panics() {
        let mut eng = Engine::new(1);
        let blaster = eng.add_node(Box::new(Blaster {
            count: 1,
            frame: test_frame(),
            echoes: vec![],
        }));
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        eng.run(None);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut eng = Engine::new(1);
        let a = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        let b = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        let bw = Bandwidth::gbps(1);
        eng.connect(a, PortId(0), b, PortId(0), bw, SimTime::ZERO);
        eng.connect(a, PortId(0), b, PortId(1), bw, SimTime::ZERO);
    }
}
