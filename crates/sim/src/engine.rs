//! The event loop: nodes, ports, timers, and deterministic dispatch.

use crate::link::{Link, LinkState};
use crate::rng::SimRng;
use crate::time::{Bandwidth, SimTime};
use crate::wheel::{Entry, TimerWheel};
use crate::Node;
use lumina_packet::buf::{self, CounterSnapshot};
use lumina_packet::Frame;
use lumina_telemetry::{MetricSet, Telemetry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifies a node within an [`Engine`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct NodeId(pub usize);

/// Identifies a port on a node.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct PortId(pub usize);

#[derive(Debug)]
enum EventKind {
    FrameArrive { port: PortId, frame: Frame },
    Timer { token: u64 },
}

/// The payload filed in the timer wheel; ordering — `(time, seq)` with
/// `seq` the monotonic push counter — lives in the wheel's [`Entry`].
struct EventBody {
    node: NodeId,
    kind: EventKind,
}

/// Counters the engine accumulates during a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Frames delivered to nodes.
    pub frames_delivered: u64,
    /// Frame bytes delivered (wire bytes, excluding line overhead).
    pub frame_bytes_delivered: u64,
    /// Timer events fired.
    pub timers_fired: u64,
    /// Total events processed.
    pub events: u64,
}

impl MetricSet for EngineStats {
    fn metric_kind(&self) -> &'static str {
        "engine"
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("EngineStats serializes")
    }
}

/// Packet-plane allocation/copy accounting for one run: the per-run delta
/// of `lumina_packet::buf`'s thread-local counters, baselined when the
/// engine is constructed.
///
/// Kept **out** of the golden `report_json` telemetry snapshot on purpose
/// (the orchestrator does not record it during `run_test`); it is surfaced
/// through [`TestResults`]-style carriers, the `telemetry` CLI subcommand,
/// and the `hotpath` bench, where `bytes_copied + bytes_shared` is the
/// copy bill of the old owned-`Vec<u8>`-per-hop design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameStats {
    /// Distinct frame buffers created.
    pub frames_allocated: u64,
    /// Bytes backing those buffers.
    pub bytes_allocated: u64,
    /// Bytes physically memcpy'd (serialization payloads, copy-on-write
    /// mutations, trimmed captures).
    pub bytes_copied: u64,
    /// Frame hand-offs that shared the buffer instead of copying.
    pub frames_shared: u64,
    /// Bytes passed or scanned in place where the old design copied.
    pub bytes_shared: u64,
    /// High-water mark of distinct buffers alive at once.
    pub peak_live_frames: u64,
}

impl FrameStats {
    fn delta(base: &CounterSnapshot) -> FrameStats {
        let now = buf::counters();
        FrameStats {
            frames_allocated: now.frames_allocated - base.frames_allocated,
            bytes_allocated: now.bytes_allocated - base.bytes_allocated,
            bytes_copied: now.bytes_copied - base.bytes_copied,
            frames_shared: now.frames_shared - base.frames_shared,
            bytes_shared: now.bytes_shared - base.bytes_shared,
            peak_live_frames: now.peak_live_frames.saturating_sub(base.live_frames),
        }
    }
}

impl MetricSet for FrameStats {
    fn metric_kind(&self) -> &'static str {
        "frames"
    }

    fn snapshot(&self) -> serde_json::Value {
        serde_json::to_value(self).expect("FrameStats serializes")
    }
}

/// How a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The event queue drained: the network went quiescent.
    Quiescent {
        /// Time of the last processed event.
        end: SimTime,
    },
    /// The configured time horizon was reached with events still pending.
    HorizonReached {
        /// The horizon.
        end: SimTime,
    },
    /// The event-count safety limit tripped (likely a livelock bug).
    EventLimit {
        /// Time at which the limit tripped.
        end: SimTime,
    },
}

impl RunOutcome {
    /// Final simulation time regardless of the outcome variant.
    pub fn end_time(self) -> SimTime {
        match self {
            RunOutcome::Quiescent { end }
            | RunOutcome::HorizonReached { end }
            | RunOutcome::EventLimit { end } => end,
        }
    }

    /// True if the network quiesced.
    pub fn is_quiescent(self) -> bool {
        matches!(self, RunOutcome::Quiescent { .. })
    }
}

/// The discrete-event engine.
pub struct Engine {
    now: SimTime,
    seq: u64,
    queue: TimerWheel<EventBody>,
    /// Next event, pre-popped so the run loop can peek at its time for
    /// the horizon check without disturbing the wheel.
    next: Option<Entry<EventBody>>,
    nodes: Vec<Option<Box<dyn Node>>>,
    links: HashMap<(NodeId, PortId), LinkState>,
    rng: SimRng,
    stats: EngineStats,
    /// Packet-plane counter baseline taken at construction; per-run
    /// [`FrameStats`] are deltas against it.
    frame_baseline: CounterSnapshot,
    telemetry: Telemetry,
    queue_hwm: usize,
    /// Safety valve against livelocked simulations.
    pub event_limit: u64,
}

impl Engine {
    /// Create an engine with the given RNG seed.
    pub fn new(seed: u64) -> Engine {
        buf::reset_peak();
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: TimerWheel::new(),
            next: None,
            nodes: Vec::new(),
            links: HashMap::new(),
            rng: SimRng::seed_from_u64(seed),
            stats: EngineStats::default(),
            frame_baseline: buf::counters(),
            telemetry: Telemetry::disabled(),
            queue_hwm: 0,
            event_limit: 500_000_000,
        }
    }

    /// Attach a telemetry sink. Nodes reach it through
    /// [`NodeCtx::telemetry`]; the engine itself reports its stats and
    /// queue high-water mark into it at the end of each run. The default
    /// sink is disabled, making every recording call a cheap no-op.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached telemetry sink (disabled by default).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Packet-plane allocation/copy counters accumulated on this thread
    /// since the engine was constructed.
    pub fn frame_stats(&self) -> FrameStats {
        FrameStats::delta(&self.frame_baseline)
    }

    /// Borrow the engine's root RNG (e.g. to fork node-local streams
    /// during setup).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Add a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        id
    }

    /// Connect `a:pa` and `b:pb` with a full-duplex link.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        bandwidth: Bandwidth,
        propagation: SimTime,
    ) {
        let fwd = Link {
            to_node: b,
            to_port: pb,
            bandwidth,
            propagation,
        };
        let rev = Link {
            to_node: a,
            to_port: pa,
            bandwidth,
            propagation,
        };
        let dup_f = self.links.insert((a, pa), LinkState::new(fwd));
        let dup_r = self.links.insert((b, pb), LinkState::new(rev));
        assert!(
            dup_f.is_none() && dup_r.is_none(),
            "port already connected: {a:?}:{pa:?} or {b:?}:{pb:?}"
        );
    }

    /// Inspect a link's egress state (for diagnostics and tests).
    pub fn link_state(&self, node: NodeId, port: PortId) -> Option<&LinkState> {
        self.links.get(&(node, port))
    }

    fn push(&mut self, time: SimTime, node: NodeId, kind: EventKind) {
        // A stashed peek (e.g. left by a horizon break) must compete with
        // the new event — return it to the wheel first.
        if let Some(stashed) = self.next.take() {
            self.queue.push(stashed);
        }
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Entry {
            time: time.as_nanos(),
            seq,
            value: EventBody { node, kind },
        });
        self.queue_hwm = self.queue_hwm.max(self.queue.len());
    }

    /// The next event by `(time, seq)`, pre-popped from the wheel so its
    /// time can be inspected for the horizon check.
    fn peek_next(&mut self) -> Option<&Entry<EventBody>> {
        if self.next.is_none() {
            self.next = self.queue.pop();
        }
        self.next.as_ref()
    }

    /// Schedule an initial timer for `node` at absolute time `at` — used
    /// during setup to kick applications off.
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, token: u64) {
        self.push(at, node, EventKind::Timer { token });
    }

    /// Inject a frame arriving at `node:port` at absolute time `at` — used
    /// by tests to drive single nodes without a peer.
    pub fn inject_frame(&mut self, node: NodeId, port: PortId, at: SimTime, frame: Frame) {
        self.push(at, node, EventKind::FrameArrive { port, frame });
    }

    /// Run until the queue drains, `horizon` passes, or the event limit
    /// trips. Afterwards every node's [`Node::on_finish`] hook runs once.
    pub fn run(&mut self, horizon: Option<SimTime>) -> RunOutcome {
        let outcome = loop {
            if self.stats.events >= self.event_limit {
                break RunOutcome::EventLimit { end: self.now };
            }
            let Some(ev) = self.peek_next() else {
                break RunOutcome::Quiescent { end: self.now };
            };
            let ev_time = SimTime::from_nanos(ev.time);
            if let Some(h) = horizon {
                if ev_time > h {
                    self.now = h;
                    break RunOutcome::HorizonReached { end: h };
                }
            }
            let ev = self.next.take().expect("peeked event is stashed");
            debug_assert!(ev_time >= self.now, "time went backwards");
            self.now = ev_time;
            self.stats.events += 1;
            self.dispatch(ev.value);
        };
        // Final flush pass.
        for i in 0..self.nodes.len() {
            let mut node = self.nodes[i].take().expect("node missing in finish");
            let mut effects = Effects::default();
            {
                let mut ctx = NodeCtx {
                    id: NodeId(i),
                    now: self.now,
                    rng: &mut self.rng,
                    effects: &mut effects,
                    telemetry: &self.telemetry,
                };
                node.on_finish(&mut ctx);
            }
            self.nodes[i] = Some(node);
            // Effects at finish are discarded by design: the run is over.
        }
        if self.telemetry.is_enabled() {
            self.telemetry.record_global_set(&self.stats);
            let (hwm, events) = (self.queue_hwm as u64, self.stats.events);
            self.telemetry.with_profile(|p| {
                p.queue_depth_hwm = p.queue_depth_hwm.max(hwm);
                p.sim_events_dispatched = events;
            });
        }
        outcome
    }

    fn dispatch(&mut self, ev: EventBody) {
        let idx = ev.node.0;
        let mut node = self.nodes[idx]
            .take()
            .unwrap_or_else(|| panic!("node {idx} missing (re-entrant dispatch?)"));
        let mut effects = Effects::default();
        {
            let mut ctx = NodeCtx {
                id: ev.node,
                now: self.now,
                rng: &mut self.rng,
                effects: &mut effects,
                telemetry: &self.telemetry,
            };
            match ev.kind {
                EventKind::FrameArrive { port, frame } => {
                    self.stats.frames_delivered += 1;
                    self.stats.frame_bytes_delivered += frame.len() as u64;
                    node.on_frame(port, frame, &mut ctx);
                }
                EventKind::Timer { token } => {
                    self.stats.timers_fired += 1;
                    node.on_timer(token, &mut ctx);
                }
            }
        }
        self.nodes[idx] = Some(node);
        self.apply(ev.node, effects);
    }

    fn apply(&mut self, from: NodeId, effects: Effects) {
        for (port, frame, depart_delay) in effects.sends {
            let key = (from, port);
            let Some(link) = self.links.get_mut(&key) else {
                panic!("node {from:?} sent on unconnected port {port:?}");
            };
            let line_bytes = lumina_packet::frame::line_occupancy_of(frame.len());
            let handoff = self.now + depart_delay;
            let arrive = link.transmit(handoff, line_bytes);
            let (to_node, to_port) = (link.link.to_node, link.link.to_port);
            self.push(arrive, to_node, EventKind::FrameArrive {
                port: to_port,
                frame,
            });
        }
        for (at, token) in effects.timers {
            self.push(at, from, EventKind::Timer { token });
        }
    }

    /// Take a node back out of the engine (after a run) for inspection.
    /// Panics if `id` is out of range.
    pub fn remove_node(&mut self, id: NodeId) -> Box<dyn Node> {
        self.nodes[id.0].take().expect("node already removed")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Default)]
struct Effects {
    sends: Vec<(PortId, Frame, SimTime)>,
    timers: Vec<(SimTime, u64)>,
}

/// The context handed to a node during dispatch. All interaction with the
/// world — sending frames, arming timers, drawing randomness — goes through
/// this.
pub struct NodeCtx<'a> {
    id: NodeId,
    now: SimTime,
    rng: &'a mut SimRng,
    effects: &'a mut Effects,
    telemetry: &'a Telemetry,
}

impl NodeCtx<'_> {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The engine's telemetry sink (disabled unless the embedder
    /// attached one via [`Engine::set_telemetry`]).
    pub fn telemetry(&self) -> &Telemetry {
        self.telemetry
    }

    /// This node's id as the plain integer telemetry uses.
    pub fn telemetry_node(&self) -> u32 {
        self.id.0 as u32
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Hand a frame to the egress side of `port` now. The frame is moved,
    /// not copied — senders keeping a reference clone the handle (an
    /// `Arc` bump), never the bytes.
    pub fn send(&mut self, port: PortId, frame: Frame) {
        self.effects.sends.push((port, frame, SimTime::ZERO));
    }

    /// Hand a frame to the egress side of `port` after an internal
    /// processing delay (e.g. the switch pipeline's ~0.4 µs).
    pub fn send_after(&mut self, port: PortId, frame: Frame, delay: SimTime) {
        self.effects.sends.push((port, frame, delay));
    }

    /// Arm a timer `delay` from now; `token` comes back in
    /// [`Node::on_timer`].
    pub fn set_timer(&mut self, delay: SimTime, token: u64) {
        self.effects.timers.push((self.now + delay, token));
    }

    /// Arm a timer at an absolute time.
    pub fn set_timer_at(&mut self, at: SimTime, token: u64) {
        debug_assert!(at >= self.now);
        self.effects.timers.push((at, token));
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lumina_packet::builder::DataPacketBuilder;
    use lumina_packet::opcode::Opcode;

    /// Echoes every arriving frame back out the same port after a delay.
    struct Echo {
        delay: SimTime,
        received: Vec<(SimTime, usize)>,
    }

    impl Node for Echo {
        fn on_frame(&mut self, port: PortId, frame: Frame, ctx: &mut NodeCtx<'_>) {
            self.received.push((ctx.now(), frame.len()));
            ctx.send_after(port, frame, self.delay);
        }
        fn on_timer(&mut self, _token: u64, _ctx: &mut NodeCtx<'_>) {}
        fn name(&self) -> &str {
            "echo"
        }
    }

    /// Sends `count` frames at t=0 and records arrival times of echoes.
    struct Blaster {
        count: usize,
        frame: Frame,
        echoes: Vec<SimTime>,
    }

    impl Node for Blaster {
        fn on_frame(&mut self, _port: PortId, _frame: Frame, ctx: &mut NodeCtx<'_>) {
            self.echoes.push(ctx.now());
        }
        fn on_timer(&mut self, _token: u64, ctx: &mut NodeCtx<'_>) {
            for _ in 0..self.count {
                ctx.send(PortId(0), self.frame.clone());
            }
        }
        fn name(&self) -> &str {
            "blaster"
        }
    }

    fn test_frame() -> Frame {
        DataPacketBuilder::new()
            .opcode(Opcode::SendOnly)
            .payload_len(1000)
            .build()
            .emit()
    }

    #[test]
    fn ping_pong_timing() {
        let mut eng = Engine::new(1);
        let frame = test_frame();
        let flen = frame.len();
        let blaster = eng.add_node(Box::new(Blaster {
            count: 1,
            frame,
            echoes: vec![],
        }));
        let echo = eng.add_node(Box::new(Echo {
            delay: SimTime::from_nanos(100),
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            echo,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(500),
        );
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        let outcome = eng.run(None);
        assert!(outcome.is_quiescent());

        let ser = Bandwidth::gbps(100)
            .serialization_time(lumina_packet::frame::line_occupancy_of(flen));
        let one_way = ser + SimTime::from_nanos(500);
        let expect = one_way + SimTime::from_nanos(100) + one_way;

        let b: Box<dyn Node> = eng.remove_node(blaster);
        // SAFETY of downcast: we know what we inserted. Use raw pointer cast
        // via Box into raw — instead, keep it simple and re-run assertions
        // through stats.
        drop(b);
        assert_eq!(eng.stats().frames_delivered, 2);
        assert_eq!(outcome.end_time(), expect);
    }

    #[test]
    fn serialization_paces_burst() {
        let mut eng = Engine::new(1);
        let frame = test_frame();
        let blaster = eng.add_node(Box::new(Blaster {
            count: 10,
            frame: frame.clone(),
            echoes: vec![],
        }));
        let echo = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            echo,
            PortId(0),
            Bandwidth::gbps(10),
            SimTime::from_nanos(1000),
        );
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        eng.run(None);
        // Echo must have received 10 frames spaced by one serialization
        // time each.
        let ser = Bandwidth::gbps(10)
            .serialization_time(lumina_packet::frame::line_occupancy_of(frame.len()));
        assert_eq!(eng.stats().frames_delivered, 20);
        let _ = ser;
    }

    #[test]
    fn horizon_stops_run() {
        let mut eng = Engine::new(1);
        struct Ticker;
        impl Node for Ticker {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimTime::from_micros(1), t + 1);
            }
        }
        let n = eng.add_node(Box::new(Ticker));
        eng.schedule_timer(n, SimTime::ZERO, 0);
        let outcome = eng.run(Some(SimTime::from_millis(1)));
        assert!(matches!(outcome, RunOutcome::HorizonReached { .. }));
        assert_eq!(outcome.end_time(), SimTime::from_millis(1));
        // ~1000 timer fires in 1ms at 1us cadence.
        assert!((995..=1001).contains(&eng.stats().timers_fired));
    }

    #[test]
    fn event_limit_trips() {
        let mut eng = Engine::new(1);
        struct Spinner;
        impl Node for Spinner {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, ctx: &mut NodeCtx<'_>) {
                // Zero-delay self-timer: a livelock.
                ctx.set_timer(SimTime::ZERO, t);
            }
        }
        let n = eng.add_node(Box::new(Spinner));
        eng.schedule_timer(n, SimTime::ZERO, 0);
        eng.event_limit = 10_000;
        let outcome = eng.run(None);
        assert!(matches!(outcome, RunOutcome::EventLimit { .. }));
    }

    #[test]
    fn determinism_across_runs() {
        fn run_once() -> (EngineStats, SimTime) {
            let mut eng = Engine::new(42);
            let frame = test_frame();
            let blaster = eng.add_node(Box::new(Blaster {
                count: 50,
                frame,
                echoes: vec![],
            }));
            let echo = eng.add_node(Box::new(Echo {
                delay: SimTime::from_nanos(37),
                received: vec![],
            }));
            eng.connect(
                blaster,
                PortId(0),
                echo,
                PortId(0),
                Bandwidth::gbps(40),
                SimTime::from_nanos(750),
            );
            eng.schedule_timer(blaster, SimTime::ZERO, 0);
            let o = eng.run(None);
            (*eng.stats(), o.end_time())
        }
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn same_timestamp_events_dispatch_in_schedule_order() {
        // FIFO among ties is what keeps pop order — and every golden
        // report — byte-identical across queue implementations.
        struct Recorder {
            tokens: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Node for Recorder {
            fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
            fn on_timer(&mut self, t: u64, _: &mut NodeCtx<'_>) {
                self.tokens.borrow_mut().push(t);
            }
        }
        let mut eng = Engine::new(7);
        let tokens = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let n = eng.add_node(Box::new(Recorder {
            tokens: tokens.clone(),
        }));
        let t = SimTime::from_micros(3);
        for token in 0..64u64 {
            eng.schedule_timer(n, t, token);
        }
        // A later-scheduled earlier event must still come first.
        eng.schedule_timer(n, SimTime::from_nanos(1), 999);
        eng.run(None);
        let got = tokens.borrow().clone();
        let mut want = vec![999u64];
        want.extend(0..64);
        assert_eq!(got, want);
    }

    #[test]
    fn frame_stats_track_shares_and_copies() {
        // Serialize before the engine takes its counter baseline, so the
        // delta shows pure frame-plane traffic.
        let frame = test_frame();
        let mut eng = Engine::new(9);
        let blaster = eng.add_node(Box::new(Blaster {
            count: 20,
            frame,
            echoes: vec![],
        }));
        let echo = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        eng.connect(
            blaster,
            PortId(0),
            echo,
            PortId(0),
            Bandwidth::gbps(100),
            SimTime::from_nanos(100),
        );
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        eng.run(None);
        let fs = eng.frame_stats();
        // The blaster clones one frame 20 times; the echo bounces the
        // handles back without any new allocation or copy.
        assert!(fs.frames_shared >= 20, "{fs:?}");
        assert!(fs.bytes_shared >= 20 * 1000, "{fs:?}");
        assert_eq!(fs.bytes_copied, 0, "no mutation, no copies: {fs:?}");
        // The one buffer predates the baseline and no new buffer is ever
        // allocated — the peak *delta* is therefore zero.
        assert_eq!(fs.frames_allocated, 0, "{fs:?}");
        assert_eq!(fs.peak_live_frames, 0, "{fs:?}");
    }

    #[test]
    #[should_panic(expected = "unconnected port")]
    fn send_on_unconnected_port_panics() {
        let mut eng = Engine::new(1);
        let blaster = eng.add_node(Box::new(Blaster {
            count: 1,
            frame: test_frame(),
            echoes: vec![],
        }));
        eng.schedule_timer(blaster, SimTime::ZERO, 0);
        eng.run(None);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut eng = Engine::new(1);
        let a = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        let b = eng.add_node(Box::new(Echo {
            delay: SimTime::ZERO,
            received: vec![],
        }));
        let bw = Bandwidth::gbps(1);
        eng.connect(a, PortId(0), b, PortId(0), bw, SimTime::ZERO);
        eng.connect(a, PortId(0), b, PortId(1), bw, SimTime::ZERO);
    }
}
