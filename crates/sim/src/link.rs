//! Point-to-point links with bandwidth, propagation delay and
//! serialization queuing.
//!
//! Each direction of a link is modeled independently: a frame handed to the
//! egress side starts serializing when the previous frame's last bit has
//! left (`next_free`), occupies the line for `line_bytes / bandwidth`, then
//! propagates for a fixed delay. This produces correct back-to-back pacing
//! at line rate — the regime Lumina's pressure tests exercise (§5).

use crate::engine::{NodeId, PortId};
use crate::time::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};

/// Static description of one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Receiving node.
    pub to_node: NodeId,
    /// Receiving port on that node.
    pub to_port: PortId,
    /// Line rate.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay.
    pub propagation: SimTime,
}

/// Dynamic state of one egress direction.
#[derive(Debug, Clone)]
pub struct LinkState {
    /// Static parameters.
    pub link: Link,
    /// Instant the line becomes free for the next frame's first bit.
    pub next_free: SimTime,
    /// Frames pushed through this direction.
    pub frames: u64,
    /// Line bytes (including per-frame overhead) pushed through.
    pub line_bytes: u64,
    /// Maximum observed backlog, as time the line is booked beyond "now".
    pub max_backlog: SimTime,
}

impl LinkState {
    /// Create idle state for a link.
    pub fn new(link: Link) -> LinkState {
        LinkState {
            link,
            next_free: SimTime::ZERO,
            frames: 0,
            line_bytes: 0,
            max_backlog: SimTime::ZERO,
        }
    }

    /// Account a frame of `line_bytes` handed to the egress at `now`.
    /// Returns the instant the last bit arrives at the far end.
    pub fn transmit(&mut self, now: SimTime, line_bytes: usize) -> SimTime {
        let start = self.next_free.max(now);
        let done = start + self.link.bandwidth.serialization_time(line_bytes);
        self.next_free = done;
        self.frames += 1;
        self.line_bytes += line_bytes as u64;
        let backlog = done.saturating_since(now);
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        done + self.link.propagation
    }

    /// Current backlog: how far beyond `now` the line is already booked.
    pub fn backlog(&self, now: SimTime) -> SimTime {
        self.next_free.saturating_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_100g() -> Link {
        Link {
            to_node: NodeId(1),
            to_port: PortId(0),
            bandwidth: Bandwidth::gbps(100),
            propagation: SimTime::from_nanos(500),
        }
    }

    #[test]
    fn single_frame_latency() {
        let mut s = LinkState::new(link_100g());
        // 1250 line bytes at 100G = 100ns serialize + 500ns propagation.
        let arrive = s.transmit(SimTime::ZERO, 1250);
        assert_eq!(arrive, SimTime::from_nanos(600));
        assert_eq!(s.frames, 1);
        assert_eq!(s.line_bytes, 1250);
    }

    #[test]
    fn back_to_back_frames_queue() {
        let mut s = LinkState::new(link_100g());
        let a1 = s.transmit(SimTime::ZERO, 1250);
        let a2 = s.transmit(SimTime::ZERO, 1250);
        let a3 = s.transmit(SimTime::ZERO, 1250);
        assert_eq!(a1, SimTime::from_nanos(600));
        assert_eq!(a2, SimTime::from_nanos(700));
        assert_eq!(a3, SimTime::from_nanos(800));
        assert_eq!(s.backlog(SimTime::ZERO), SimTime::from_nanos(300));
        assert_eq!(s.max_backlog, SimTime::from_nanos(300));
    }

    #[test]
    fn idle_line_resets_pacing() {
        let mut s = LinkState::new(link_100g());
        s.transmit(SimTime::ZERO, 1250);
        // Next frame handed over long after the line drained.
        let arrive = s.transmit(SimTime::from_micros(10), 1250);
        assert_eq!(arrive, SimTime::from_micros(10) + SimTime::from_nanos(600));
        assert_eq!(s.backlog(SimTime::from_micros(11)), SimTime::ZERO);
    }

    #[test]
    fn throughput_matches_line_rate() {
        let mut s = LinkState::new(link_100g());
        let n = 10_000usize;
        let bytes = 1250usize;
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = s.transmit(SimTime::ZERO, bytes);
        }
        let elapsed = (last - s.link.propagation).as_secs_f64();
        let gbps = (n * bytes) as f64 * 8.0 / elapsed / 1e9;
        assert!((gbps - 100.0).abs() < 0.5, "got {gbps} Gbps");
    }
}
