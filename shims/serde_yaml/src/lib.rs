//! Offline shim for `serde_yaml`.
//!
//! Parses the YAML subset used by this workspace's configs: block
//! mappings and sequences with two-space-style indentation, flow
//! mappings/sequences (`{k: v}`, `[a, b]`), `#` comments, and plain or
//! quoted scalars with the core-schema typing rules (null/bool/int/float
//! detection). `to_string` emits flow-style YAML (JSON is a YAML subset),
//! which this same parser round-trips.

pub use serde::Error;
use serde::{Map, Value};

/// Parse a YAML document into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_document(s)?;
    T::deserialize(&value)
}

/// Serialize as flow-style YAML (one line, JSON-compatible).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = value.serialize().to_string();
    out.push('\n');
    Ok(out)
}

/// Parse into an untyped [`Value`].
pub fn parse_document(s: &str) -> Result<Value, Error> {
    let lines = logical_lines(s);
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    // A document that is a single flow value (e.g. "{}" or "[1, 2]").
    if lines.len() == 1 {
        let text = lines[0].content.trim();
        if text.starts_with('{') || text.starts_with('[') {
            return parse_flow_complete(text);
        }
        if !text.contains(": ") && !text.ends_with(':') && !text.starts_with("- ") && text != "-" {
            return Ok(scalar(text));
        }
    }
    let mut pos = 0;
    let v = parse_block(&lines, &mut pos, lines[0].indent)?;
    if pos != lines.len() {
        return Err(Error::custom(format!(
            "unexpected content at line {} (inconsistent indentation?)",
            lines[pos].number
        )));
    }
    Ok(v)
}

#[derive(Debug)]
struct Line {
    indent: usize,
    content: String,
    number: usize,
}

/// Split into comment-stripped, non-blank lines with indents.
fn logical_lines(s: &str) -> Vec<Line> {
    let mut out = Vec::new();
    for (i, raw) in s.lines().enumerate() {
        if raw.trim() == "---" {
            continue; // document start marker
        }
        let stripped = strip_comment(raw);
        let trimmed_end = stripped.trim_end();
        if trimmed_end.trim().is_empty() {
            continue;
        }
        let indent = trimmed_end.len() - trimmed_end.trim_start().len();
        out.push(Line {
            indent,
            content: trimmed_end.trim_start().to_string(),
            number: i + 1,
        });
    }
    out
}

/// Remove a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut prev_is_space = true;
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'#' if !in_single && !in_double && prev_is_space => return &line[..i],
            _ => {}
        }
        prev_is_space = b == b' ' || b == b'\t';
    }
    line
}

/// Parse a block node (mapping or sequence) starting at `lines[*pos]`,
/// consuming every line indented at least `indent`.
fn parse_block(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, Error> {
    let first = &lines[*pos];
    if first.content.starts_with("- ") || first.content == "-" {
        parse_block_seq(lines, pos, indent)
    } else if split_map_entry(&first.content).is_some() {
        parse_block_map(lines, pos, indent)
    } else {
        // A lone flow value or scalar on its own (indented) line.
        let v = flow_or_scalar(&first.content, first.number)?;
        *pos += 1;
        Ok(v)
    }
}

fn parse_block_seq(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, Error> {
    let mut items = Vec::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let line = &lines[*pos];
        let rest = if line.content == "-" {
            ""
        } else if let Some(r) = line.content.strip_prefix("- ") {
            r.trim()
        } else {
            break; // a mapping key at this indent ends the sequence
        };
        *pos += 1;
        if rest.is_empty() {
            // Item body is nested on the following deeper-indented lines.
            if *pos < lines.len() && lines[*pos].indent > indent {
                let child_indent = lines[*pos].indent;
                items.push(parse_block(lines, pos, child_indent)?);
            } else {
                items.push(Value::Null);
            }
        } else if let Some((key, val)) = split_map_entry(rest) {
            // `- key: value` starts an inline mapping; subsequent entries
            // sit on deeper-indented lines.
            let mut m = Map::new();
            insert_entry(&mut m, key, val, lines, pos, indent, line.number)?;
            while *pos < lines.len() && lines[*pos].indent > indent {
                let child = &lines[*pos];
                let (k, v) = split_map_entry(&child.content).ok_or_else(|| {
                    Error::custom(format!("expected `key: value` at line {}", child.number))
                })?;
                let child_indent = child.indent;
                *pos += 1;
                insert_entry(&mut m, k, v, lines, pos, child_indent, child.number)?;
            }
            items.push(Value::Object(m));
        } else {
            items.push(flow_or_scalar(rest, line.number)?);
        }
    }
    Ok(Value::Array(items))
}

fn parse_block_map(lines: &[Line], pos: &mut usize, indent: usize) -> Result<Value, Error> {
    let mut m = Map::new();
    while *pos < lines.len() && lines[*pos].indent == indent {
        let line = &lines[*pos];
        let (key, val) = split_map_entry(&line.content).ok_or_else(|| {
            Error::custom(format!(
                "expected `key: value` at line {}, got {:?}",
                line.number, line.content
            ))
        })?;
        *pos += 1;
        insert_entry(&mut m, key, val, lines, pos, indent, line.number)?;
    }
    Ok(Value::Object(m))
}

/// Handle one mapping entry whose value may be inline or nested below.
fn insert_entry(
    m: &mut Map,
    key: &str,
    inline: &str,
    lines: &[Line],
    pos: &mut usize,
    indent: usize,
    line_no: usize,
) -> Result<(), Error> {
    let key = unquote(key);
    let value = if inline.is_empty() {
        if *pos < lines.len() && lines[*pos].indent > indent {
            let child_indent = lines[*pos].indent;
            parse_block(lines, pos, child_indent)?
        } else {
            Value::Null
        }
    } else {
        flow_or_scalar(inline, line_no)?
    };
    m.insert(key, value);
    Ok(())
}

/// Split `key: value` / `key:` at the first unquoted, un-nested colon
/// that is followed by a space or ends the entry.
fn split_map_entry(s: &str) -> Option<(&str, &str)> {
    let bytes = s.as_bytes();
    let mut in_single = false;
    let mut in_double = false;
    let mut depth = 0i32;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'\'' if !in_double => in_single = !in_single,
            b'"' if !in_single => in_double = !in_double,
            b'{' | b'[' if !in_single && !in_double => depth += 1,
            b'}' | b']' if !in_single && !in_double => depth -= 1,
            b':' if !in_single && !in_double && depth == 0 => {
                let followed_by_space = bytes.get(i + 1).is_none_or(|&b| b == b' ');
                if followed_by_space {
                    return Some((s[..i].trim(), s[i + 1..].trim()));
                }
            }
            _ => {}
        }
    }
    None
}

fn flow_or_scalar(s: &str, line_no: usize) -> Result<Value, Error> {
    if s.starts_with('{') || s.starts_with('[') {
        parse_flow_complete(s).map_err(|e| e.at(format!("line {line_no}")))
    } else {
        Ok(scalar(s))
    }
}

fn parse_flow_complete(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_flow(bytes, &mut pos)?;
    skip_spaces(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters after flow value in {s:?}"
        )));
    }
    Ok(v)
}

fn skip_spaces(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] == b' ' || b[*pos] == b'\t') {
        *pos += 1;
    }
}

fn parse_flow(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_spaces(b, pos);
    match b.get(*pos) {
        None => Err(Error::custom("unexpected end of flow value")),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_spaces(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_flow(b, pos)?);
                skip_spaces(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in flow sequence")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut m = Map::new();
            skip_spaces(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(m));
            }
            loop {
                skip_spaces(b, pos);
                let key_raw = flow_token(b, pos, true)?;
                skip_spaces(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::custom("expected `:` in flow mapping"));
                }
                *pos += 1;
                let val = parse_flow(b, pos)?;
                m.insert(unquote(key_raw.trim()), val);
                skip_spaces(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(m));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in flow mapping")),
                }
            }
        }
        Some(_) => {
            let tok = flow_token(b, pos, false)?;
            Ok(scalar(tok.trim()))
        }
    }
}

/// Read a scalar token in flow context: a quoted string, or bare text up
/// to a structural character (`,`/`}`/`]`, plus `:` when reading a key).
fn flow_token<'a>(b: &'a [u8], pos: &mut usize, is_key: bool) -> Result<&'a str, Error> {
    let start = *pos;
    match b.get(*pos) {
        Some(&q @ (b'"' | b'\'')) => {
            *pos += 1;
            while *pos < b.len() && b[*pos] != q {
                *pos += 1;
            }
            if *pos >= b.len() {
                return Err(Error::custom("unterminated quoted scalar"));
            }
            *pos += 1;
        }
        _ => {
            while let Some(&c) = b.get(*pos) {
                let stop = matches!(c, b',' | b'}' | b']') || (is_key && c == b':');
                if stop {
                    break;
                }
                *pos += 1;
            }
        }
    }
    std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("invalid UTF-8 in scalar"))
}

fn unquote(s: &str) -> String {
    let bytes = s.as_bytes();
    if bytes.len() >= 2
        && ((bytes[0] == b'"' && bytes[bytes.len() - 1] == b'"')
            || (bytes[0] == b'\'' && bytes[bytes.len() - 1] == b'\''))
    {
        let inner = &s[1..s.len() - 1];
        if bytes[0] == b'"' {
            return inner
                .replace("\\\\", "\u{0}")
                .replace("\\\"", "\"")
                .replace("\\n", "\n")
                .replace("\\t", "\t")
                .replace('\u{0}', "\\");
        }
        return inner.replace("''", "'");
    }
    s.to_string()
}

/// Apply YAML core-schema typing to a plain scalar.
fn scalar(s: &str) -> Value {
    let bytes = s.as_bytes();
    if !bytes.is_empty() && (bytes[0] == b'"' || bytes[0] == b'\'') {
        return Value::String(unquote(s));
    }
    match s {
        "" | "~" | "null" | "Null" | "NULL" => return Value::Null,
        "true" | "True" | "TRUE" => return Value::Bool(true),
        "false" | "False" | "FALSE" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(u) = s.parse::<u64>() {
        return Value::Number(u.into());
    }
    if let Ok(i) = s.parse::<i64>() {
        return Value::Number(i.into());
    }
    // Floats must look numeric; keep version-like strings ("1.2.3") as text.
    if s.parse::<f64>().is_ok()
        && s.chars()
            .all(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
    {
        return Value::Number(s.parse::<f64>().unwrap().into());
    }
    Value::String(s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_maps_and_sequences() {
        let v = parse_document(
            "# comment\n\
             a:\n\
             \x20 b: 1\n\
             \x20 c: hello\n\
             items:\n\
             \x20 - {x: 1, y: ecn}\n\
             \x20 - {x: 2}\n\
             flags: [0, 1]\n",
        )
        .unwrap();
        assert_eq!(v["a"]["b"], 1u64);
        assert_eq!(v["a"]["c"], "hello");
        assert_eq!(v["items"][0]["y"], "ecn");
        assert_eq!(v["flags"][1], 1u64);
    }

    #[test]
    fn empty_flow_document() {
        let v = parse_document("{}").unwrap();
        assert_eq!(v, Value::Object(Map::new()));
    }

    #[test]
    fn scalars_follow_core_schema() {
        assert_eq!(scalar("true"), Value::Bool(true));
        assert_eq!(scalar("14"), Value::from(14u64));
        assert_eq!(scalar("-3"), Value::from(-3i64));
        assert_eq!(scalar("1.5"), Value::from(1.5));
        assert_eq!(scalar("write"), Value::String("write".into()));
        assert_eq!(scalar("~"), Value::Null);
        assert_eq!(scalar("'14'"), Value::String("14".into()));
    }

    #[test]
    fn block_seq_of_inline_maps() {
        let v = parse_document(
            "events:\n\
             \x20 - qpn: 1\n\
             \x20\x20\x20 psn: 4\n\
             \x20 - qpn: 2\n\
             \x20\x20\x20 psn: 5\n",
        )
        .unwrap();
        assert_eq!(v["events"][0]["psn"], 4u64);
        assert_eq!(v["events"][1]["qpn"], 2u64);
    }

    #[test]
    fn flow_output_round_trips() {
        let v = parse_document("a:\n  b: [1, 2]\n  c: text\n").unwrap();
        let s = to_string(&v).unwrap();
        let back = parse_document(&s).unwrap();
        assert_eq!(back, v);
    }
}
