//! Offline shim for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the shim `serde` crate's Value-tree traits, parsing the item token
//! stream by hand (the container ships no `syn`/`quote`). Supported
//! shapes: structs with named fields, tuple/newtype structs, unit
//! structs, and enums with unit/tuple/struct variants (externally tagged,
//! like real serde). Supported `#[serde(...)]` attributes:
//! `default`, `default = "path"`, `rename_all = "kebab-case"`,
//! `deny_unknown_fields`, and `skip_serializing_if = "path"`. Generic
//! parameters are supported for lifetimes only — enough for every derive
//! target in this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------- model

#[derive(Debug, Clone)]
struct Field {
    ident: String,
    name: String,
    default: Option<DefaultKind>,
    /// `skip_serializing_if = "path"`: omit the key when `path(&field)`.
    skip_if: Option<String>,
}

#[derive(Debug, Clone)]
enum DefaultKind {
    Std,
    Path(String),
}

#[derive(Debug)]
enum VariantBody {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    ident: String,
    name: String,
    body: VariantBody,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: String,
    deny_unknown: bool,
    container_default: bool,
    kind: Kind,
}

#[derive(Debug, Default)]
struct SerdeAttrs {
    rename_all: Option<String>,
    deny_unknown: bool,
    default: Option<DefaultKind>,
    skip_if: Option<String>,
}

// -------------------------------------------------------------- parsing

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Cursor {
        Cursor {
            toks: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde shim derive: expected identifier, got {other:?}"),
        }
    }

    /// Consume all leading `#[...]` attributes, folding any `#[serde(...)]`
    /// contents into the returned summary.
    fn parse_attrs(&mut self) -> SerdeAttrs {
        let mut out = SerdeAttrs::default();
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                return out;
            }
            self.pos += 1;
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => panic!("serde shim derive: malformed attribute: {other:?}"),
            };
            let mut inner = Cursor::new(group.stream());
            if !inner.eat_ident("serde") {
                continue; // doc comment or unrelated attribute
            }
            let args = match inner.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                other => panic!("serde shim derive: malformed #[serde]: {other:?}"),
            };
            let mut a = Cursor::new(args.stream());
            while a.peek().is_some() {
                let key = a.expect_ident();
                match key.as_str() {
                    "default" => {
                        if a.eat_punct('=') {
                            out.default = Some(DefaultKind::Path(a.expect_str_literal()));
                        } else {
                            out.default = Some(DefaultKind::Std);
                        }
                    }
                    "rename_all" => {
                        assert!(a.eat_punct('='), "serde shim derive: rename_all needs a value");
                        out.rename_all = Some(a.expect_str_literal());
                    }
                    "deny_unknown_fields" => out.deny_unknown = true,
                    "skip_serializing_if" => {
                        assert!(
                            a.eat_punct('='),
                            "serde shim derive: skip_serializing_if needs a value"
                        );
                        out.skip_if = Some(a.expect_str_literal());
                    }
                    other => panic!(
                        "serde shim derive: unsupported #[serde({other})] — the offline shim \
                         only knows default, rename_all, deny_unknown_fields, \
                         skip_serializing_if"
                    ),
                }
                a.eat_punct(',');
            }
        }
    }

    fn expect_str_literal(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Literal(l)) => {
                let s = l.to_string();
                s.trim_matches('"').to_string()
            }
            other => panic!("serde shim derive: expected string literal, got {other:?}"),
        }
    }

    /// Skip `pub` / `pub(crate)` visibility.
    fn skip_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Consume a generics block `<...>` if present, returning it verbatim.
    fn parse_generics(&mut self) -> String {
        if !matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return String::new();
        }
        let mut depth = 0i32;
        let mut collected = TokenStream::new();
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            collected.extend([t]);
            if depth == 0 {
                break;
            }
        }
        collected.to_string()
    }

    /// Consume tokens until a top-level comma (tracking `<...>` depth),
    /// discarding them. Used to skip field types and discriminants.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn rename(ident: &str, rule: Option<&str>, is_variant: bool) -> String {
    let base = ident.strip_prefix("r#").unwrap_or(ident);
    match rule {
        Some("kebab-case") => {
            if is_variant {
                camel_to_separated(base, '-')
            } else {
                base.replace('_', "-")
            }
        }
        Some("snake_case") => {
            if is_variant {
                camel_to_separated(base, '_')
            } else {
                base.to_string()
            }
        }
        Some("lowercase") => base.to_lowercase(),
        Some(other) => panic!("serde shim derive: unsupported rename_all = {other:?}"),
        None => base.to_string(),
    }
}

fn camel_to_separated(s: &str, sep: char) -> String {
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if c.is_uppercase() {
            if i > 0 {
                out.push(sep);
            }
            out.extend(c.to_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn parse_named_fields(group: TokenStream, rename_all: Option<&str>) -> Vec<Field> {
    let mut c = Cursor::new(group);
    let mut out = Vec::new();
    while c.peek().is_some() {
        let attrs = c.parse_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        let ident = c.expect_ident();
        assert!(c.eat_punct(':'), "serde shim derive: expected `:` after field {ident}");
        c.skip_until_comma();
        c.eat_punct(',');
        out.push(Field {
            name: rename(&ident, rename_all, false),
            ident,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    out
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut n = 0;
    while c.peek().is_some() {
        c.parse_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        c.skip_until_comma();
        c.eat_punct(',');
        n += 1;
    }
    n
}

fn parse_input(input: TokenStream) -> Input {
    let mut c = Cursor::new(input);
    let container = c.parse_attrs();
    c.skip_vis();
    let is_enum = if c.eat_ident("struct") {
        false
    } else if c.eat_ident("enum") {
        true
    } else {
        panic!("serde shim derive: expected struct or enum");
    };
    let name = c.expect_ident();
    let generics = c.parse_generics();
    if generics.contains("const ")
        || generics
            .chars()
            .zip(generics.chars().skip(1))
            .any(|(a, b)| a != '\'' && b.is_alphabetic() && a == '<')
    {
        // Only lifetime generics are supported; a type parameter right
        // after '<' (not preceded by a quote) indicates otherwise.
        // (Heuristic; every workspace derive target is lifetime-only.)
    }
    let rename_all = container.rename_all.as_deref();

    let kind = if is_enum {
        let body = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        };
        let mut vc = Cursor::new(body);
        let mut variants = Vec::new();
        while vc.peek().is_some() {
            vc.parse_attrs();
            if vc.peek().is_none() {
                break;
            }
            let ident = vc.expect_ident();
            let vbody = match vc.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let n = count_tuple_fields(g.stream());
                    vc.pos += 1;
                    VariantBody::Tuple(n)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let fields = parse_named_fields(g.stream(), rename_all);
                    vc.pos += 1;
                    VariantBody::Struct(fields)
                }
                _ => VariantBody::Unit,
            };
            if vc.eat_punct('=') {
                vc.skip_until_comma(); // explicit discriminant
            }
            vc.eat_punct(',');
            variants.push(Variant {
                name: rename(&ident, rename_all, true),
                ident,
                body: vbody,
            });
        }
        Kind::Enum(variants)
    } else {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream(), rename_all))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        }
    };

    Input {
        name,
        generics,
        deny_unknown: container.deny_unknown,
        container_default: matches!(container.default, Some(DefaultKind::Std)),
        kind,
    }
}

// -------------------------------------------------------------- codegen

fn impl_header(input: &Input, trait_name: &str) -> String {
    format!(
        "impl{g} ::serde::{t} for {n}{g}",
        g = input.generics,
        t = trait_name,
        n = input.name
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                let insert = format!(
                    "__m.insert(\"{}\", ::serde::Serialize::serialize(&self.{}));\n",
                    f.name, f.ident
                );
                match &f.skip_if {
                    Some(path) => s.push_str(&format!(
                        "if !{path}(&self.{ident}) {{ {insert} }}\n",
                        ident = f.ident
                    )),
                    None => s.push_str(&insert),
                }
            }
            s.push_str("::serde::Value::Object(__m)");
            s
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.body {
                    VariantBody::Unit => arms.push_str(&format!(
                        "Self::{} => ::serde::Value::String(\"{}\".to_string()),\n",
                        v.ident, v.name
                    )),
                    VariantBody::Tuple(1) => arms.push_str(&format!(
                        "Self::{i}(__v0) => {{ let mut __m = ::serde::Map::new(); \
                         __m.insert(\"{n}\", ::serde::Serialize::serialize(__v0)); \
                         ::serde::Value::Object(__m) }}\n",
                        i = v.ident,
                        n = v.name
                    )),
                    VariantBody::Tuple(k) => {
                        let binds: Vec<String> = (0..*k).map(|i| format!("__v{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "Self::{i}({bl}) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(\"{n}\", ::serde::Value::Array(vec![{it}])); \
                             ::serde::Value::Object(__m) }}\n",
                            i = v.ident,
                            n = v.name,
                            bl = binds.join(", "),
                            it = items.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::from("let mut __f = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.insert(\"{}\", ::serde::Serialize::serialize({}));\n",
                                f.name, f.ident
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{i} {{ {bl} }} => {{ {inner} let mut __m = ::serde::Map::new(); \
                             __m.insert(\"{n}\", ::serde::Value::Object(__f)); \
                             ::serde::Value::Object(__m) }}\n",
                            i = v.ident,
                            n = v.name,
                            bl = binds.join(", "),
                        ));
                    }
                }
            }
            if variants.is_empty() {
                "unreachable!(\"empty enum cannot be instantiated\")".to_string()
            } else {
                format!("match self {{\n{arms}\n}}")
            }
        }
    };
    let out = format!(
        "{header} {{\n    fn serialize(&self) -> ::serde::Value {{\n{body}\n    }}\n}}\n",
        header = impl_header(&input, "Serialize"),
    );
    out.parse().expect("serde shim derive: generated Serialize impl parses")
}

fn named_fields_de(fields: &[Field], type_name: &str, container_default: bool) -> String {
    let mut s = String::new();
    if container_default {
        s.push_str("let __d: Self = ::std::default::Default::default();\n");
    }
    s.push_str("Ok(Self {\n");
    for f in fields {
        let missing = match (&f.default, container_default) {
            (Some(DefaultKind::Std), _) => "::std::default::Default::default()".to_string(),
            (Some(DefaultKind::Path(p)), _) => format!("{p}()"),
            (None, true) => format!("__d.{}", f.ident),
            (None, false) => format!("::serde::__private::missing_field(\"{}\")?", f.name),
        };
        s.push_str(&format!(
            "{ident}: match __m.get(\"{name}\") {{ \
             Some(__x) => ::serde::Deserialize::deserialize(__x)\
             .map_err(|__e| __e.at(\"{name}\"))?, \
             None => {missing} }},\n",
            ident = f.ident,
            name = f.name,
        ));
    }
    s.push_str("})");
    let _ = type_name;
    s
}

fn deny_unknown_check(fields: &[Field], type_name: &str) -> String {
    let names: Vec<String> = fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
    if names.is_empty() {
        return String::new();
    }
    format!(
        "for (__k, _) in __m.iter() {{ match __k.as_str() {{ {} => {{}}, __other => \
         return Err(::serde::Error::custom(format!(\
         \"unknown field `{{}}` in {t}\", __other))) }} }}\n",
        names.join(" | "),
        t = type_name,
    )
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    let tn = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = format!(
                "let __m = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(format!(\"expected map for {tn}, got {{}}\", __v)))?;\n"
            );
            if input.deny_unknown {
                s.push_str(&deny_unknown_check(fields, tn));
            }
            s.push_str(&named_fields_de(fields, tn, input.container_default));
            s
        }
        Kind::TupleStruct(0) | Kind::UnitStruct => {
            format!(
                "if __v.is_null() {{ Ok(Self) }} else {{ \
                 Err(::serde::Error::custom(\"expected null for unit struct {tn}\")) }}"
            )
        }
        Kind::TupleStruct(1) => {
            "Ok(Self(::serde::Deserialize::deserialize(__v)?))".to_string()
        }
        Kind::TupleStruct(n) => {
            let mut s = format!(
                "let __a = __v.as_array().ok_or_else(|| \
                 ::serde::Error::custom(\"expected sequence for {tn}\"))?;\n\
                 if __a.len() != {n} {{ return Err(::serde::Error::custom(format!(\
                 \"expected {n} elements for {tn}, got {{}}\", __a.len()))); }}\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                .collect();
            s.push_str(&format!("Ok(Self({}))", items.join(", ")));
            s
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match &v.body {
                    VariantBody::Unit => unit_arms.push_str(&format!(
                        "\"{}\" => Ok(Self::{}),\n",
                        v.name, v.ident
                    )),
                    VariantBody::Tuple(1) => data_arms.push_str(&format!(
                        "\"{n}\" => Ok(Self::{i}(::serde::Deserialize::deserialize(__val)\
                         .map_err(|__e| __e.at(\"{n}\"))?)),\n",
                        n = v.name,
                        i = v.ident
                    )),
                    VariantBody::Tuple(k) => {
                        let items: Vec<String> = (0..*k)
                            .map(|i| format!("::serde::Deserialize::deserialize(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{n}\" => {{ let __a = __val.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected sequence for {tn}::{i}\"))?; \
                             if __a.len() != {k} {{ return Err(::serde::Error::custom(\
                             \"wrong tuple arity for {tn}::{i}\")); }} \
                             Ok(Self::{i}({items})) }}\n",
                            n = v.name,
                            i = v.ident,
                            items = items.join(", ")
                        ));
                    }
                    VariantBody::Struct(fields) => {
                        let inner = named_fields_de_variant(fields, &v.ident);
                        data_arms.push_str(&format!(
                            "\"{n}\" => {{ let __m = __val.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {tn}::{i}\"))?; {inner} }}\n",
                            n = v.name,
                            i = v.ident,
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {tn} variant `{{}}`\", __other))),\n}},\n\
                 ::serde::Value::Object(__map) if __map.len() == 1 => {{\n\
                 let (__k, __val) = __map.iter().next().unwrap();\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => Err(::serde::Error::custom(format!(\
                 \"unknown {tn} variant `{{}}`\", __other))),\n}}\n}},\n\
                 __other => Err(::serde::Error::custom(format!(\
                 \"expected {tn} variant, got {{}}\", __other))),\n}}"
            )
        }
    };
    let out = format!(
        "{header} {{\n    fn deserialize(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::Error> {{\n{body}\n    }}\n}}\n",
        header = impl_header(&input, "Deserialize"),
    );
    out.parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}

/// Like [`named_fields_de`] but for an enum struct-variant (constructs
/// `Self::Variant { ... }`; no container-default support).
fn named_fields_de_variant(fields: &[Field], variant: &str) -> String {
    let mut s = format!("Ok(Self::{variant} {{\n");
    for f in fields {
        let missing = match &f.default {
            Some(DefaultKind::Std) => "::std::default::Default::default()".to_string(),
            Some(DefaultKind::Path(p)) => format!("{p}()"),
            None => format!("::serde::__private::missing_field(\"{}\")?", f.name),
        };
        s.push_str(&format!(
            "{ident}: match __m.get(\"{name}\") {{ \
             Some(__x) => ::serde::Deserialize::deserialize(__x)\
             .map_err(|__e| __e.at(\"{name}\"))?, \
             None => {missing} }},\n",
            ident = f.ident,
            name = f.name,
        ));
    }
    s.push_str("})");
    s
}
