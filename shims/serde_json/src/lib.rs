//! Offline shim for `serde_json`.
//!
//! Re-exports the shim serde crate's [`Value`]/[`Map`]/[`Number`] types and
//! provides the usual entry points: [`to_value`], [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`from_value`], and the [`json!`]
//! macro. Output is deterministic: maps keep insertion order and the
//! printers make no locale- or hash-order-dependent choices.

pub use serde::{Error, Map, Number, Value};

/// Convert any [`serde::Serialize`] type into a [`Value`] tree.
///
/// Infallible in this shim (the value-tree model has no unserializable
/// states), but keeps the `Result` signature for drop-in compatibility.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.serialize())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize(&value)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.serialize().to_string())
}

/// Serialize to human-readable JSON (two-space indent, like serde_json).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let v = value.serialize();
    let mut out = String::new();
    write_pretty(&v, 0, &mut out);
    Ok(out)
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(item, indent + STEP, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in m.iter().enumerate() {
                out.push_str(&" ".repeat(indent + STEP));
                out.push_str(&Value::String(k.clone()).to_string());
                out.push_str(": ");
                write_pretty(val, indent + STEP, out);
                if i + 1 < m.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
        other => out.push_str(&other.to_string()),
    }
}

/// Parse a JSON document into a typed value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s)?;
    T::deserialize(&value)
}

mod parse {
    use super::{Error, Map, Value};

    pub fn parse(s: &str) -> Result<Value, Error> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {pos} in JSON document"
            )));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err(Error::custom("unexpected end of JSON document")),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'"') => string(b, pos).map(Value::String),
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                *pos += 1;
                let mut m = Map::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Object(m));
                }
                loop {
                    skip_ws(b, pos);
                    let key = string(b, pos)?;
                    skip_ws(b, pos);
                    if b.get(*pos) != Some(&b':') {
                        return Err(Error::custom("expected `:` after object key"));
                    }
                    *pos += 1;
                    m.insert(key, value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Object(m));
                        }
                        _ => return Err(Error::custom("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => number(b, pos),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, text: &str, v: Value) -> Result<Value, Error> {
        if b[*pos..].starts_with(text.as_bytes()) {
            *pos += text.len();
            Ok(v)
        } else {
            Err(Error::custom(format!("invalid JSON literal, expected {text}")))
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
        if b.get(*pos) != Some(&b'"') {
            return Err(Error::custom("expected string"));
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match b.get(*pos) {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    *pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    *pos += 1;
                    match b.get(*pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = b
                                .get(*pos + 1..*pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            *pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape sequence")),
                    }
                    *pos += 1;
                }
                Some(_) => {
                    // Take the full UTF-8 scalar starting here.
                    let rest = std::str::from_utf8(&b[*pos..])
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
        let start = *pos;
        if b.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        let mut float = false;
        while let Some(&c) = b.get(*pos) {
            match c {
                b'0'..=b'9' => *pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    *pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&b[start..*pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom("expected JSON value"));
        }
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(u.into()));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(i.into()));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(f.into()))
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

/// Build a [`Value`] from a JSON-like literal, mirroring `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert($key, $crate::json!($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).unwrap()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = json!({"a": 1, "b": [true, null, "x"]});
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"b":[true,null,"x"]}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_printing() {
        let v = json!({"k": [1, 2]});
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\nbA", "n": -3, "f": 1.5}"#).unwrap();
        assert_eq!(v["s"], "a\nbA");
        assert_eq!(v["n"], -3i64);
        assert_eq!(v["f"], 1.5);
    }

    #[test]
    fn json_macro_expr_form() {
        let flag = true;
        assert_eq!(json!(flag), Value::Bool(true));
        assert_eq!(json!(2 + 2), Value::from(4u64));
    }
}
