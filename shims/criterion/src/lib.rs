//! Offline shim for `criterion`.
//!
//! Implements the benchmark-harness API used by this workspace
//! ([`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with `sample_size`/`throughput`, [`Bencher::iter`],
//! `criterion_group!`/`criterion_main!`) on plain `std::time::Instant`
//! timing. Each benchmark runs a short warmup, then `sample_size` timed
//! samples, and prints the median per-iteration time — no statistics
//! machinery, no report files.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: usize,
}

impl Bencher {
    /// Time `routine`, recording `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: aim for ~5ms per sample, at least one iteration.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = Duration::from_millis(5);
        self.iters_per_sample = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2] / self.iters_per_sample as u32
    }
}

fn print_result(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.median_per_iter();
    let rate = throughput.map(|t| {
        let per_sec = if per_iter.as_nanos() == 0 {
            f64::INFINITY
        } else {
            1e9 / per_iter.as_nanos() as f64
        };
        match t {
            Throughput::Bytes(n) => format!(
                " ({:.1} MiB/s)",
                n as f64 * per_sec / (1024.0 * 1024.0)
            ),
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", n as f64 * per_sec),
        }
    });
    println!(
        "bench {name:<40} {:>12.3} µs/iter{}",
        per_iter.as_nanos() as f64 / 1000.0,
        rate.unwrap_or_default()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut (),
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate the group with a throughput, printed alongside times.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_count: self.sample_size,
        };
        f(&mut b);
        print_result(&format!("{}/{}", self.name, id), &b, self.throughput);
        self
    }

    /// End the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {
    unit: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 0,
            sample_count: 20,
        };
        f(&mut b);
        print_result(&id, &b, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _parent: &mut self.unit,
        }
    }
}

/// Bundle benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.benchmark_group("g")
            .sample_size(2)
            .bench_function("inc", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }
}
