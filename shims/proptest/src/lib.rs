//! Offline shim for `proptest`.
//!
//! Provides the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`/`boxed`, numeric ranges as strategies, `any::<T>()`,
//! `prop::sample::select`, `prop::collection::vec`, `prop_oneof!`, and
//! the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros. Sampling is
//! deterministic (fixed-seed RNG per test) and there is no shrinking:
//! a failing case reports its assertion message directly.

pub mod test_runner {
    /// Deterministic RNG handed to strategies.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Fixed-seed RNG so test runs are reproducible.
        pub fn deterministic() -> TestRng {
            TestRng(<rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                0x1b0e_57ab_1e5e_ed00,
            ))
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }

        /// Uniform draw in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform draw in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type this strategy produces.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { inner: self, f }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct MapStrategy<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// Equal-weight choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the macro's boxed arms.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Any;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            rng.unit_f64() as f32
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list.
    pub struct Select<T>(Vec<T>);

    /// `prop::sample::select` — pick one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty list");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for variable-length vectors.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `prop::collection::vec` — `size`-many draws from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Per-test run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to draw per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declare property tests. Each `fn` becomes a `#[test]` that samples its
/// parameters `config.cases` times and fails on the first `Err` from a
/// `prop_assert!` family macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $crate::__proptest_bind!(__rng, $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!("proptest case {} of {}: {}", __case + 1, __config.cases, __msg);
                }
            }
        }
        $crate::__proptest_tests!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
}

/// Assert inside a `proptest!` body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {:?} != {:?}", __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {:?} != {:?} — {}", __l, __r, format!($($fmt)+)
            ));
        }
    }};
}

/// Equal-weight union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y: bool, z in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
            prop_assert!((0.0..1.0).contains(&z));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

        #[test]
        fn oneof_and_select(v in prop_oneof![
            (0u8..4).prop_map(|b| b as u32),
            prop::sample::select(vec![100u32, 200]),
        ]) {
            prop_assert!(v < 4 || v == 100 || v == 200, "got {v}");
        }

        #[test]
        fn collection_vec_sizes(items in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        let s = 0u64..1_000_000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
