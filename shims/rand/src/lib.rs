//! Offline shim for the `rand` crate.
//!
//! Implements the subset this workspace uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` extension methods `gen`,
//! `gen_range`, and `gen_bool` — on top of a deterministic xoshiro256++
//! generator seeded through splitmix64. The stream differs from the real
//! `rand` crate's `StdRng` (ChaCha12), which is fine here: the simulator
//! only requires determinism, not a particular stream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random from an [`RngCore`]
/// (the shim's stand-in for `Standard: Distribution<T>`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Map a uniform u64 into `[0, span)`. Plain modulo: the bias is far below
/// anything a simulation test could observe, and it keeps the stream
/// platform-independent.
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    x % span
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of an inferable primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_from(self)
    }

    /// A uniformly random value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_range(self)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace does not distinguish small and standard RNGs.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..32).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u32 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
