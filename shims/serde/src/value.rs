//! The in-memory data model: [`Value`], [`Number`], and the
//! insertion-ordered [`Map`].

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON-style number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number(pub(crate) N);

#[derive(Debug, Clone, Copy)]
pub(crate) enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// As `u64` when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(u) => Some(u),
            N::I(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// As `i64` when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(u) if u <= i64::MAX as u64 => Some(u as i64),
            N::I(i) => Some(i),
            _ => None,
        }
    }

    /// As `f64` (always representable, possibly lossily).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::U(u) => u as f64,
            N::I(i) => i as f64,
            N::F(f) => f,
        })
    }

    /// True when the number is a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl From<u64> for Number {
    fn from(v: u64) -> Number {
        Number(N::U(v))
    }
}
impl From<i64> for Number {
    fn from(v: i64) -> Number {
        if v >= 0 {
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }
}
impl From<f64> for Number {
    fn from(v: f64) -> Number {
        Number(N::F(v))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Number) -> bool {
        match (self.0, other.0) {
            (N::F(a), N::F(b)) => a == b,
            (N::F(f), _) | (_, N::F(f)) => {
                // Mixed float/int: compare numerically.
                let other = if matches!(self.0, N::F(_)) { other } else { self };
                other.as_f64() == Some(f)
            }
            _ => match (self.as_i64(), other.as_i64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_u64() == other.as_u64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(u) => write!(f, "{u}"),
            N::I(i) => write!(f, "{i}"),
            N::F(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/inf; serde_json writes null.
                    write!(f, "null")
                } else {
                    let s = format!("{v}");
                    if s.contains('.') || s.contains('e') || s.contains('E') {
                        write!(f, "{s}")
                    } else {
                        write!(f, "{s}.0")
                    }
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (the shim's `serde_json::Map`).
///
/// Backed by a `Vec` of pairs: lookups are linear, which is fine at the
/// object sizes reports use, and iteration order is deterministic —
/// a property the telemetry journal's byte-identical-output guarantee
/// relies on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Map {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up a value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a value mutably by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// True when `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Insert, replacing (in place) any existing entry for `key`.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        match self.get_mut(&key) {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Remove an entry, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Map {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A dynamically typed value tree, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Number.
    Number(Number),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object.
    Object(Map),
}

impl Value {
    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// As bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As u64.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As i64.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As f64 (ints convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// As string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As mutable array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// As mutable object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup (None on non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Map::new());
        }
        let map = self
            .as_object_mut()
            .expect("cannot index non-object value with string key");
        if !map.contains_key(key) {
            map.insert(key, Value::Null);
        }
        map.get_mut(key).unwrap()
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.as_array()
            .and_then(|a| a.get(idx))
            .unwrap_or(&NULL)
    }
}

macro_rules! value_from {
    ($($t:ty => $variant:expr),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { $variant(v) }
        }
    )*};
}
value_from! {
    bool => Value::Bool,
    String => Value::String,
    Map => Value::Object,
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

macro_rules! value_from_num {
    ($($t:ty as $via:ty),* $(,)?) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::from(v as $via)) }
        }
    )*};
}
value_from_num! {
    u8 as u64, u16 as u64, u32 as u64, u64 as u64, usize as u64,
    i8 as i64, i16 as i64, i32 as i64, i64 as i64, isize as i64,
    f32 as f64, f64 as f64,
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

// Comparison sugar so tests can write `assert_eq!(report["x"], true)`.
macro_rules! value_partial_eq {
    ($($t:ty),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self == &Value::from(other.clone())
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == &Value::from(self.clone())
            }
        }
    )*};
}
value_partial_eq!(bool, u32, u64, usize, i32, i64, f64, String, &str);

impl fmt::Display for Value {
    /// Compact JSON rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Object(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Write a JSON-escaped quoted string.
pub(crate) fn write_json_string(f: &mut impl fmt::Write, s: &str) -> fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::from(1u64));
        m.insert("a", Value::from(2u64));
        m.insert("z", Value::from(3u64)); // replace in place
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
        assert_eq!(m.get("z"), Some(&Value::from(3u64)));
    }

    #[test]
    fn display_is_json() {
        let mut m = Map::new();
        m.insert("n", Value::from(3u64));
        m.insert("s", Value::from("hi\n"));
        m.insert("a", Value::Array(vec![Value::Bool(true), Value::Null]));
        let v = Value::Object(m);
        assert_eq!(v.to_string(), r#"{"n":3,"s":"hi\n","a":[true,null]}"#);
    }

    #[test]
    fn index_mut_auto_inserts() {
        let mut v = Value::Null;
        v["x"] = Value::from(1u64);
        assert_eq!(v["x"], 1u64);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn number_equality_across_kinds() {
        assert_eq!(Value::from(3u64), Value::from(3i64));
        assert_eq!(Value::from(3.0f64), Value::from(3u64));
        assert_ne!(Value::from(-1i64), Value::from(1u64));
    }
}
