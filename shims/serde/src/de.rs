//! The [`Deserialize`] trait and implementations for std types.

use crate::error::Error;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;
use std::net::Ipv4Addr;

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Read a value back.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Types usable as map keys when deserializing.
pub trait DeserializeKey: Sized {
    /// Parse the key from its string form.
    fn deserialize_key(s: &str) -> Result<Self, Error>;
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<bool, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v}")))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
        impl DeserializeKey for $t {
            fn deserialize_key(s: &str) -> Result<$t, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid {} key {s:?}", stringify!($t))))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<$t, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
        impl DeserializeKey for $t {
            fn deserialize_key(s: &str) -> Result<$t, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid {} key {s:?}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<f64, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v}")))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<f32, Error> {
        f64::deserialize(v).map(|f| f as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<String, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<char, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected char, got {v}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Deserialize for () {
    fn deserialize(v: &Value) -> Result<(), Error> {
        if v.is_null() {
            Ok(())
        } else {
            Err(Error::custom(format!("expected null, got {v}")))
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Option<T>, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::deserialize(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Box<T>, Error> {
        T::deserialize(v).map(Box::new)
    }
}

fn seq<'a>(v: &'a Value, what: &str) -> Result<&'a Vec<Value>, Error> {
    v.as_array()
        .ok_or_else(|| Error::custom(format!("expected sequence for {what}, got {v}")))
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Vec<T>, Error> {
        seq(v, "Vec")?
            .iter()
            .enumerate()
            .map(|(i, item)| T::deserialize(item).map_err(|e| e.at(format!("[{i}]"))))
            .collect()
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(v: &Value) -> Result<VecDeque<T>, Error> {
        Vec::<T>::deserialize(v).map(VecDeque::from)
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<[T; N], Error> {
        let items = seq(v, "array")?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(|item| T::deserialize(item))
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<(A, B), Error> {
        let items = seq(v, "tuple")?;
        if items.len() != 2 {
            return Err(Error::custom(format!("expected 2-tuple, got {}", items.len())));
        }
        Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<(A, B, C), Error> {
        let items = seq(v, "tuple")?;
        if items.len() != 3 {
            return Err(Error::custom(format!("expected 3-tuple, got {}", items.len())));
        }
        Ok((
            A::deserialize(&items[0])?,
            B::deserialize(&items[1])?,
            C::deserialize(&items[2])?,
        ))
    }
}

impl<K: DeserializeKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<BTreeMap<K, V>, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected map, got {v}")))?;
        let mut out = BTreeMap::new();
        for (k, val) in m.iter() {
            out.insert(
                K::deserialize_key(k)?,
                V::deserialize(val).map_err(|e| e.at(k))?,
            );
        }
        Ok(out)
    }
}

impl<K: DeserializeKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<HashMap<K, V>, Error> {
        let m = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected map, got {v}")))?;
        let mut out = HashMap::new();
        for (k, val) in m.iter() {
            out.insert(
                K::deserialize_key(k)?,
                V::deserialize(val).map_err(|e| e.at(k))?,
            );
        }
        Ok(out)
    }
}

impl<A: DeserializeKey, B: DeserializeKey> DeserializeKey for (A, B) {
    fn deserialize_key(s: &str) -> Result<(A, B), Error> {
        let (a, b) = s
            .split_once('|')
            .ok_or_else(|| Error::custom(format!("expected `a|b` tuple key, got {s:?}")))?;
        Ok((A::deserialize_key(a)?, B::deserialize_key(b)?))
    }
}

impl<A: DeserializeKey, B: DeserializeKey, C: DeserializeKey> DeserializeKey for (A, B, C) {
    fn deserialize_key(s: &str) -> Result<(A, B, C), Error> {
        let mut parts = s.splitn(3, '|');
        let (a, b, c) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(c)) => (a, b, c),
            _ => return Err(Error::custom(format!("expected `a|b|c` tuple key, got {s:?}"))),
        };
        Ok((
            A::deserialize_key(a)?,
            B::deserialize_key(b)?,
            C::deserialize_key(c)?,
        ))
    }
}

impl DeserializeKey for String {
    fn deserialize_key(s: &str) -> Result<String, Error> {
        Ok(s.to_string())
    }
}

impl Deserialize for Ipv4Addr {
    fn deserialize(v: &Value) -> Result<Ipv4Addr, Error> {
        let s = v
            .as_str()
            .ok_or_else(|| Error::custom(format!("expected IPv4 string, got {v}")))?;
        s.parse()
            .map_err(|_| Error::custom(format!("invalid IPv4 address {s:?}")))
    }
}

impl DeserializeKey for Ipv4Addr {
    fn deserialize_key(s: &str) -> Result<Ipv4Addr, Error> {
        s.parse()
            .map_err(|_| Error::custom(format!("invalid IPv4 key {s:?}")))
    }
}
