//! Offline shim for `serde`.
//!
//! The real serde streams values through `Serializer`/`Deserializer`
//! visitors; this shim materializes everything through one in-memory
//! [`Value`] tree instead. `Serialize` renders a value *to* a `Value`,
//! `Deserialize` reads a value back *from* one, and the companion shims
//! (`serde_json`, `serde_yaml`) are thin text front-ends over the same
//! tree. The `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the `serde_derive` shim) understand the subset of `#[serde(...)]`
//! attributes this workspace uses: `default`, `default = "path"`,
//! `rename_all = "kebab-case"`, and `deny_unknown_fields`.

pub mod de;
pub mod error;
pub mod ser;
pub mod value;

pub use de::Deserialize;
pub use error::Error;
pub use ser::Serialize;
pub use value::{Map, Number, Value};

// The derive macros live in the macro namespace, so these re-exports
// coexist with the traits of the same names (exactly like real serde).
pub use serde_derive::{Deserialize, Serialize};

/// Internals used by derive-generated code. Not a public API.
#[doc(hidden)]
pub mod __private {
    use crate::{Deserialize, Error, Value};

    /// Resolve a missing field: types with an "absent" representation
    /// (e.g. `Option`) deserialize from `Null`; everything else errors.
    pub fn missing_field<T: Deserialize>(name: &str) -> Result<T, Error> {
        T::deserialize(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`")))
    }
}
