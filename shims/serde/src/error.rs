//! The single error type shared by the serde shim family.

use std::fmt;

/// A serialization or deserialization error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Create an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Prefix the message with a location (field or index) for better
    /// diagnostics when bubbling out of nested structures.
    pub fn at(self, location: impl fmt::Display) -> Error {
        Error {
            msg: format!("{location}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}
