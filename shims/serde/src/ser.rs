//! The [`Serialize`] trait and implementations for std types.

use crate::value::{Map, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::net::Ipv4Addr;

/// Render `self` as a [`Value`] tree.
pub trait Serialize {
    /// Produce the value-tree representation.
    fn serialize(&self) -> Value;
}

/// Types usable as map keys when serializing (rendered as strings, the
/// way JSON requires).
pub trait SerializeKey {
    /// The string form of the key.
    fn serialize_key(&self) -> String;
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_prim {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::from(*self) }
        }
        impl SerializeKey for $t {
            fn serialize_key(&self) -> String { self.to_string() }
        }
    )*};
}
ser_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl SerializeKey for String {
    fn serialize_key(&self) -> String {
        self.clone()
    }
}

impl SerializeKey for str {
    fn serialize_key(&self) -> String {
        self.to_string()
    }
}

impl SerializeKey for char {
    fn serialize_key(&self) -> String {
        self.to_string()
    }
}

impl SerializeKey for Ipv4Addr {
    fn serialize_key(&self) -> String {
        self.to_string()
    }
}

impl<A: SerializeKey, B: SerializeKey> SerializeKey for (A, B) {
    fn serialize_key(&self) -> String {
        format!("{}|{}", self.0.serialize_key(), self.1.serialize_key())
    }
}

impl<A: SerializeKey, B: SerializeKey, C: SerializeKey> SerializeKey for (A, B, C) {
    fn serialize_key(&self) -> String {
        format!(
            "{}|{}|{}",
            self.0.serialize_key(),
            self.1.serialize_key(),
            self.2.serialize_key()
        )
    }
}

impl<K: SerializeKey + ?Sized> SerializeKey for &K {
    fn serialize_key(&self) -> String {
        (**self).serialize_key()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Array(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize, D: Serialize> Serialize for (A, B, C, D) {
    fn serialize(&self) -> Value {
        Value::Array(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
            self.3.serialize(),
        ])
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.serialize_key(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort by key string so serialization is deterministic regardless
        // of hash iteration order.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.serialize_key(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl Serialize for Ipv4Addr {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for crate::Map {
    fn serialize(&self) -> Value {
        Value::Object(self.clone())
    }
}
