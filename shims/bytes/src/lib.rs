//! Offline shim for the `bytes` crate.
//!
//! Provides the subset of the real API this workspace uses: an immutable,
//! cheaply cloneable, sliceable byte buffer backed by an `Arc<Vec<u8>>`.
//! Clones share the allocation; `slice` produces a view without copying.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Create an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copy the given slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Create a `Bytes` from a static slice without tracking the borrow
    /// (the shim copies; the real crate borrows).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this buffer sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// The bytes as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// True when this handle is the only reference to the allocation
    /// (mirrors `bytes::Bytes::is_unique` from the real crate, ≥ 1.8).
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// Mutable access to the viewed bytes, only when this handle uniquely
    /// owns the allocation. Returns `None` when the buffer is shared —
    /// callers wanting copy-on-write semantics copy on `None`.
    ///
    /// Shim extension: the real crate routes mutation through `BytesMut`;
    /// this workspace's copy-on-write `Frame` only needs in-place access
    /// on the unique-owner fast path.
    pub fn get_mut(&mut self) -> Option<&mut [u8]> {
        let (start, end) = (self.start, self.end);
        Arc::get_mut(&mut self.data).map(|v| &mut v[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
    }

    #[test]
    fn unique_ownership_grants_mutation() {
        let mut b = Bytes::from(vec![1u8, 2, 3]);
        assert!(b.is_unique());
        b.get_mut().unwrap()[0] = 9;
        assert_eq!(&b[..], &[9, 2, 3]);

        let c = b.clone();
        assert!(!b.is_unique());
        assert!(b.get_mut().is_none());
        drop(c);
        assert!(b.is_unique());

        // A unique sliced view mutates only its window.
        let mut s = Bytes::from(vec![0u8; 4]).slice(1..3);
        let m = s.get_mut().unwrap();
        assert_eq!(m.len(), 2);
        m[1] = 7;
        assert_eq!(&s[..], &[0, 7]);
    }

    #[test]
    fn equality_and_order() {
        let a = Bytes::from(vec![1u8, 2]);
        let b = Bytes::copy_from_slice(&[1, 2]);
        assert_eq!(a, b);
        assert!(vec![1u8] < vec![2u8]);
        assert!(Bytes::new().is_empty());
    }
}
