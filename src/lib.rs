//! Workspace root crate for the Lumina reproduction.
//!
//! This crate re-exports the public surface of every sub-crate so that the
//! examples and integration tests in this repository (and downstream users
//! who just want "all of Lumina") can depend on a single crate.
//!
//! The individual crates are:
//!
//! * [`lumina_packet`] — RoCEv2 wire formats (Ethernet/IPv4/UDP/IB BTH/…).
//! * [`lumina_sim`] — the deterministic discrete-event simulation engine.
//! * [`lumina_rnic`] — behavioral models of the four RNICs under test.
//! * [`lumina_switch`] — the programmable-switch event injector.
//! * [`lumina_dumper`] — the traffic-dumper pool and trace reconstruction.
//! * [`lumina_gen`] — the verbs-style traffic generator.
//! * [`lumina_core`] — orchestrator, analyzers, integrity checks and fuzzer.
pub use lumina_core as core;
pub use lumina_dumper as dumper;
pub use lumina_gen as gen;
pub use lumina_packet as packet;
pub use lumina_rnic as rnic;
pub use lumina_sim as sim;
pub use lumina_switch as switch;
