//! Quirk-detection matrix (robustness PR, satellite 5): every misbehavior
//! the `quirks:` section can inject, exercised on the Figure-11
//! noisy-neighbor preset. Each kind must (a) actually fire, (b) be flagged
//! by the conformance oracle with the *expected* violation class — the
//! closed loop proving injector and oracle agree on what the spec says —
//! and (c) replay bit-for-bit: two same-seed quirked runs produce
//! byte-identical JSON reports, violations included.

use lumina_core::analyzers::{conformance, ConformanceOpts, ViolationClass};
use lumina_core::config::{EventSpec, QuirksSection, TestConfig};
use lumina_core::orchestrator::run_test;
use lumina_core::TestResults;
use lumina_rnic::QuirkStats;

fn fig11() -> TestConfig {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/configs/fig11_noisy_neighbor.yaml"
    );
    let yaml = std::fs::read_to_string(path).expect("preset exists");
    TestConfig::from_yaml(&yaml).unwrap()
}

fn fig11_quirked(
    quirks: QuirksSection,
    tweak: impl FnOnce(&mut TestConfig),
) -> TestConfig {
    let mut cfg = fig11();
    tweak(&mut cfg);
    cfg.quirks = Some(quirks);
    cfg.validate().expect("quirked preset validates");
    cfg
}

/// Run twice with the same seed; the reports must match byte for byte.
fn run_replayed(cfg: &TestConfig) -> (TestResults, serde_json::Value) {
    let a = run_test(cfg).unwrap();
    let b = run_test(cfg).unwrap();
    let ja = a.report_json().unwrap();
    let jb = b.report_json().unwrap();
    assert_eq!(
        serde_json::to_string(&ja).unwrap(),
        serde_json::to_string(&jb).unwrap(),
        "same-seed quirked runs must replay bit-for-bit"
    );
    (a, ja)
}

/// The closed loop for one quirk kind: the counter fired, and the oracle
/// flagged at least one violation of the class this misbehavior maps to.
fn assert_detected(
    res: &TestResults,
    fired: impl Fn(&QuirkStats) -> u64,
    expect: ViolationClass,
) {
    let stats = res.quirk_stats.as_ref().expect("quirk plane installed");
    assert!(fired(stats) > 0, "quirk never fired: {stats:?}");
    let rep = res.conformance.as_ref().expect("oracle graded the run");
    assert!(!rep.compliant, "injected misbehavior must not grade clean");
    assert!(
        rep.violations.iter().any(|v| v.class == expect),
        "expected a {expect:?} violation, got {:?}",
        rep.class_counts()
    );
}

#[test]
fn wrong_ack_psn_is_flagged_as_ack_psn_invalid() {
    let cfg = fig11_quirked(
        QuirksSection {
            wrong_ack_psn_prob: 0.3,
            ..QuirksSection::default()
        },
        |c| c.traffic.rdma_verb = "write".into(),
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.wrong_ack_psn, ViolationClass::AckPsnInvalid);
}

#[test]
fn dropped_acks_are_flagged_as_unacked_delivery() {
    let cfg = fig11_quirked(
        QuirksSection {
            ack_drop_prob: 0.3,
            ..QuirksSection::default()
        },
        |c| c.traffic.rdma_verb = "write".into(),
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.acks_dropped, ViolationClass::UnackedDelivery);
}

#[test]
fn coalesced_acks_are_flagged_as_ack_coalescing() {
    let cfg = fig11_quirked(
        QuirksSection {
            ack_coalesce_prob: 0.35,
            ..QuirksSection::default()
        },
        |c| {
            c.traffic.rdma_verb = "write".into();
            // Several messages in flight per QP so a withheld ACK has
            // successors to fold into.
            c.traffic.tx_depth = 4;
        },
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.acks_coalesced, ViolationClass::AckCoalescing);
}

#[test]
fn suppressed_cnps_are_flagged_as_missing_cnp() {
    let cfg = fig11_quirked(
        QuirksSection {
            cnp_suppress_prob: 1.0,
            ..QuirksSection::default()
        },
        |c| {
            // Read traffic: data (read responses) flows responder →
            // requester, so the requester is the notification point.
            c.requester.dcqcn_np_enable = true;
            for qpn in [13, 14] {
                c.traffic.data_pkt_events.push(EventSpec {
                    qpn,
                    psn: 3,
                    r#type: "ecn".into(),
                    iter: 1,
                    every: 0,
                    delay_us: 0,
                    reorder_by: 0,
                });
            }
        },
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.cnps_suppressed, ViolationClass::MissingCnp);
}

#[test]
fn spurious_cnps_are_flagged() {
    let cfg = fig11_quirked(
        QuirksSection {
            cnp_spurious_prob: 0.02,
            ..QuirksSection::default()
        },
        |_| {},
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.cnps_spurious, ViolationClass::SpuriousCnp);
}

#[test]
fn ghost_retransmits_are_flagged_as_spurious_retransmit() {
    let cfg = fig11_quirked(
        QuirksSection {
            ghost_retransmit_prob: 0.05,
            ..QuirksSection::default()
        },
        |_| {},
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(
        &res,
        |s| s.ghost_retransmits,
        ViolationClass::SpuriousRetransmit,
    );
}

#[test]
fn stale_msn_is_flagged_as_msn_regression() {
    let cfg = fig11_quirked(
        QuirksSection {
            stale_msn_prob: 0.4,
            ..QuirksSection::default()
        },
        |_| {},
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.stale_msn, ViolationClass::MsnRegression);
}

#[test]
fn gbn_off_by_one_is_flagged_as_nack_psn_mismatch() {
    let cfg = fig11_quirked(
        QuirksSection {
            // Not 1.0: a NACK resets the retry timer, so a device that
            // *always* skews its NACKs traps the requester in a
            // NACK/retransmit livelock until the horizon. At 0.5 the
            // first honest NACK ends each loop, while the injected drops
            // still provoke plenty of skewed ones.
            gbn_off_by_one_prob: 0.5,
            ..QuirksSection::default()
        },
        // Write verb: the injected drops then provoke sequence-error
        // NACKs. Traffic may still struggle under this abuse; detection
        // is what's asserted, not completion.
        |c| c.traffic.rdma_verb = "write".into(),
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.nacks_off_by_one, ViolationClass::NackPsnMismatch);
}

#[test]
fn icrc_corruption_is_flagged_as_icrc_miscompute() {
    let cfg = fig11_quirked(
        QuirksSection {
            icrc_corrupt_prob: 0.05,
            ..QuirksSection::default()
        },
        |_| {},
    );
    let (res, _) = run_replayed(&cfg);
    assert_detected(&res, |s| s.icrc_corrupted, ViolationClass::IcrcMiscompute);
}

#[test]
fn quirk_seed_varies_misbehavior_without_touching_workload() {
    let mk = |quirk_seed| {
        fig11_quirked(
            QuirksSection {
                seed: Some(quirk_seed),
                ghost_retransmit_prob: 0.05,
                ..QuirksSection::default()
            },
            |_| {},
        )
    };
    let a = run_test(&mk(1)).unwrap();
    let b = run_test(&mk(2)).unwrap();
    // Same workload either way: the engine RNG never sees the quirk seed.
    assert_eq!(a.conns[0].requester.qpn, b.conns[0].requester.qpn);
    // But the misbehavior schedule differs.
    let (qa, qb) = (a.quirk_stats.clone().unwrap(), b.quirk_stats.clone().unwrap());
    assert_ne!(
        (qa.ghost_retransmits, first_ghost_psn(&a)),
        (qb.ghost_retransmits, first_ghost_psn(&b)),
        "different quirk seeds should misbehave differently"
    );
}

fn first_ghost_psn(res: &TestResults) -> Option<u32> {
    res.conformance
        .as_ref()
        .and_then(|r| r.violations.first())
        .and_then(|v| v.psn)
}

#[test]
fn noop_quirk_section_matches_a_pristine_run_byte_for_byte() {
    let pristine = fig11();
    let noop = fig11_quirked(QuirksSection::default(), |_| {});
    let a = run_test(&pristine).unwrap();
    let b = run_test(&noop).unwrap();
    assert_eq!(
        serde_json::to_string(&a.report_json().unwrap()).unwrap(),
        serde_json::to_string(&b.report_json().unwrap()).unwrap(),
        "an all-zero quirks: section must not perturb the run"
    );
    assert!(b.quirk_stats.is_none(), "no plane attached for a noop section");
    assert!(b.conformance.is_none(), "no oracle verdict for a noop section");
}

#[test]
fn quirk_free_runs_grade_fully_compliant() {
    // The oracle itself, replayed over pristine traffic: a well-behaved
    // device must produce zero violations, partial evidence included.
    let res = run_test(&fig11()).unwrap();
    let trace = res.trace.as_ref().expect("intact trace");
    let opts = ConformanceOpts::from_results(&res);
    let rep = conformance::analyze(trace, &res.conns, &opts);
    assert!(rep.compliant, "false positives on fig11: {:?}", rep.violations);
    assert!(rep.violations.is_empty());
    assert!(!rep.partial, "pristine fig11 must not degrade the oracle");
    assert_eq!(rep.checked_conns, 36);
}
