//! Ablation shape tests: each modeled quirk is causally responsible for
//! its bug — fixing the knob fixes the symptom, and the symptom scales
//! with the knob.

use lumina_bench::ablations;

#[test]
fn ets_work_conservation_fix_recovers_bandwidth() {
    let fix = ablations::ets_fix(3);
    // Stock CX6 Dx pins QP1 near its guarantee even with QP0 slowed…
    assert!(
        fix.stock_qp1_gbps < fix.vanilla_qp1_gbps * 1.15,
        "stock {} vs vanilla {}",
        fix.stock_qp1_gbps,
        fix.vanilla_qp1_gbps
    );
    // …while the work-conservation fix lets it absorb the spare bandwidth.
    assert!(
        fix.fixed_qp1_gbps > fix.vanilla_qp1_gbps * 1.1,
        "fixed {} vs vanilla {}",
        fix.fixed_qp1_gbps,
        fix.vanilla_qp1_gbps
    );
}

#[test]
fn recovery_context_pool_controls_the_noisy_neighbor_cliff() {
    let sweep = ablations::context_sweep(&[8, 16]);
    let small = &sweep[0];
    let large = &sweep[1];
    // 12 concurrent drops overflow 8 contexts…
    assert!(small.rx_discards > 0, "{small:?}");
    assert!(small.innocent_mct_ms > 1.0, "{small:?}");
    // …but fit in 16: innocent flows untouched.
    assert_eq!(large.rx_discards, 0, "{large:?}");
    assert!(large.innocent_mct_ms < 1.0, "{large:?}");
}

#[test]
fn apm_queue_capacity_controls_interop_discards() {
    let sweep = ablations::apm_sweep(&[256, 4096]);
    assert!(sweep[0].rx_discards > 0, "{:?}", sweep[0]);
    assert_eq!(sweep[1].rx_discards, 0, "{:?}", sweep[1]);
    // Monotone: more capacity, fewer discards.
    assert!(sweep[0].rx_discards > sweep[1].rx_discards);
}
