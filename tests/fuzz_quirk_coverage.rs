//! Coverage-guided campaigns against the quirk matrix (coverage PR,
//! satellite 3 + acceptance): for every DUT-misbehavior knob the
//! `quirks:` section exposes, a short coverage-guided campaign must reach
//! the knob's expected (journal-edge, violation-class) pair and surface
//! it as a first-class finding (a reproducer naming the class) — while a
//! heuristic-scored campaign on the *same budget and seed* reports
//! nothing that names the class. The fixed-budget acceptance test then
//! holds coverage mode to the headline claim: on a fig11-shaped base with
//! the quirk-knob mutation dimension enabled, it must surface at least
//! twice as many distinct violation-classed pairs as the heuristic
//! campaign, with every violation reproducer re-triggering its class.

use lumina_core::analyzers::ViolationClass;
use lumina_core::config::{EventSpec, QuirksSection, TestConfig};
use lumina_core::fuzz::coverage::{pairs_of, violation_classes, CoverageParams};
use lumina_core::fuzz::mutate::EventMutator;
use lumina_core::fuzz::{fuzz, score, FuzzOutcome, FuzzParams};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// The fig11 noisy-neighbor preset, trimmed to 2 messages per QP so a
/// campaign's worth of runs stays cheap; 36 connections and the large
/// messages survive, so every quirk still has thousands of data packets
/// to fire on.
fn fig11_short() -> TestConfig {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/configs/fig11_noisy_neighbor.yaml"
    );
    let yaml = std::fs::read_to_string(path).expect("preset exists");
    let mut cfg = TestConfig::from_yaml(&yaml).unwrap();
    cfg.traffic.num_msgs_per_qp = 2;
    cfg
}

/// One row of the matrix: a knob with its firing preconditions (mirroring
/// tests/quirk_matrix.rs) and the violation class the oracle maps it to.
fn knob_matrix() -> Vec<(&'static str, TestConfig, ViolationClass)> {
    let quirked = |quirks: QuirksSection, tweak: &dyn Fn(&mut TestConfig)| {
        let mut cfg = fig11_short();
        tweak(&mut cfg);
        cfg.quirks = Some(quirks);
        cfg.validate().expect("quirked preset validates");
        cfg
    };
    vec![
        (
            "wrong-ack-psn",
            quirked(
                QuirksSection {
                    wrong_ack_psn_prob: 0.3,
                    ..Default::default()
                },
                &|c| c.traffic.rdma_verb = "write".into(),
            ),
            ViolationClass::AckPsnInvalid,
        ),
        (
            "ack-drop",
            quirked(
                QuirksSection {
                    ack_drop_prob: 0.3,
                    ..Default::default()
                },
                &|c| c.traffic.rdma_verb = "write".into(),
            ),
            ViolationClass::UnackedDelivery,
        ),
        (
            "ack-coalesce",
            quirked(
                QuirksSection {
                    ack_coalesce_prob: 0.35,
                    ..Default::default()
                },
                &|c| {
                    c.traffic.rdma_verb = "write".into();
                    c.traffic.tx_depth = 4;
                },
            ),
            ViolationClass::AckCoalescing,
        ),
        (
            "cnp-suppress",
            quirked(
                QuirksSection {
                    cnp_suppress_prob: 1.0,
                    ..Default::default()
                },
                &|c| {
                    c.requester.dcqcn_np_enable = true;
                    for qpn in [13, 14] {
                        c.traffic.data_pkt_events.push(EventSpec {
                            qpn,
                            psn: 3,
                            r#type: "ecn".into(),
                            iter: 1,
                            every: 0,
                            delay_us: 0,
                            reorder_by: 0,
                        });
                    }
                },
            ),
            ViolationClass::MissingCnp,
        ),
        (
            "cnp-spurious",
            quirked(
                QuirksSection {
                    cnp_spurious_prob: 0.02,
                    ..Default::default()
                },
                &|_| {},
            ),
            ViolationClass::SpuriousCnp,
        ),
        (
            "ghost-retransmit",
            quirked(
                QuirksSection {
                    ghost_retransmit_prob: 0.05,
                    ..Default::default()
                },
                &|_| {},
            ),
            ViolationClass::SpuriousRetransmit,
        ),
        (
            "stale-msn",
            quirked(
                QuirksSection {
                    stale_msn_prob: 0.4,
                    ..Default::default()
                },
                &|_| {},
            ),
            ViolationClass::MsnRegression,
        ),
        (
            "gbn-off-by-one",
            quirked(
                QuirksSection {
                    gbn_off_by_one_prob: 0.5,
                    ..Default::default()
                },
                &|c| c.traffic.rdma_verb = "write".into(),
            ),
            ViolationClass::NackPsnMismatch,
        ),
        (
            "icrc-corrupt",
            quirked(
                QuirksSection {
                    icrc_corrupt_prob: 0.05,
                    ..Default::default()
                },
                &|_| {},
            ),
            ViolationClass::IcrcMiscompute,
        ),
    ]
}

/// The shared short budget: one generation of four candidates, serial.
fn short_budget(coverage: bool) -> FuzzParams {
    FuzzParams {
        pool_size: 2,
        iterations: 4,
        batch_size: 4,
        workers: 0,
        seed: 0xc070,
        coverage: coverage.then(|| CoverageParams {
            // Shrinking is proven elsewhere (shrink_prop, the coverage
            // differential); keep the 9-knob sweep cheap.
            shrink: false,
            ..Default::default()
        }),
        ..Default::default()
    }
}

#[test]
fn every_quirk_knob_is_reached_by_a_short_coverage_campaign() {
    for (name, base, class) in knob_matrix() {
        let mut m = EventMutator {
            events_only: true,
            ..Default::default()
        };
        let out = fuzz(
            &base,
            &mut m,
            score::default_score,
            &short_budget(true),
        );
        let cov = out.coverage.as_ref().expect("coverage mode on");

        // The campaign surfaced the knob's class as a first-class finding.
        let repro = cov
            .reproducers
            .iter()
            .find(|r| r.class == Some(class))
            .unwrap_or_else(|| {
                panic!(
                    "{name}: no {class:?} reproducer; campaign found {:?}",
                    cov.reproducers
                        .iter()
                        .map(|r| (r.class, r.desc.clone()))
                        .collect::<Vec<_>>()
                )
            });

        // And the finding is the expected (journal-edge, violation-class)
        // pair: re-running the reproducer yields at least one edge pair
        // carrying the class verdict.
        let res = lumina_core::orchestrator::run_test(&repro.shrink.cfg).unwrap();
        let label = class.label();
        assert!(
            pairs_of(&res).iter().any(|(_, v)| *v == label),
            "{name}: reproducer run carries no {label} pair"
        );

        // The heuristic scorer alone, on the same budget and seed, never
        // names the class: its anomaly stream is blind to the oracle.
        let mut m = EventMutator {
            events_only: true,
            ..Default::default()
        };
        let heuristic = fuzz(
            &base,
            &mut m,
            score::default_score,
            &short_budget(false),
        );
        assert!(
            heuristic.anomalies.iter().all(|(_, d)| !d.contains(label)),
            "{name}: heuristic campaign unexpectedly named {label}"
        );
    }
}

/// Distinct violation-classed (edge, class) pairs across the configs a
/// campaign *reported* — corpus + reproducers for coverage mode, anomalies
/// for the heuristic — recorded while the campaign scored them, so the
/// comparison costs no extra simulation runs.
fn reported_pairs(seed: u64, coverage: bool) -> (usize, FuzzOutcome) {
    let base = fig11_short();
    // Baseline-relative anomaly bar: the untouched fig11 base already has
    // a large innocent completion time, so an absolute bar would flag
    // every candidate and the "reported findings" comparison would be
    // meaningless. A finding is a config whose noisy-neighbor objective is
    // clearly elevated (+25%) over the base — the bar a human triaging
    // the campaign would actually use.
    let base_res = lumina_core::orchestrator::run_test(&base).unwrap();
    let (baseline, _) = score::noisy_neighbor_score(&base, &base_res);
    // (config YAML → its violation-classed pairs), filled by the scorer.
    type SeenPairs = Vec<(String, BTreeSet<(String, String)>)>;
    let seen: RefCell<SeenPairs> = RefCell::new(Vec::new());
    let scorer = |cfg: &TestConfig, res: &lumina_core::orchestrator::TestResults| {
        let pairs: BTreeSet<(String, String)> = pairs_of(res)
            .into_iter()
            .filter(|(_, v)| *v != "compliant")
            .map(|(e, v)| (e, v.to_string()))
            .collect();
        seen.borrow_mut().push((cfg.to_yaml(), pairs));
        // The §6.2.2 noisy-neighbor objective: a pure performance
        // heuristic, structurally blind to spec violations — exactly the
        // scorer the paper drove its campaigns with.
        score::noisy_neighbor_score(cfg, res)
    };
    let params = FuzzParams {
        pool_size: 4,
        iterations: 24,
        batch_size: 4,
        workers: 0,
        seed,
        // The heuristic campaign's discoveries are exactly the configs it
        // reports over the baseline-relative bar; coverage mode also
        // reports every behavior-novel config through its corpus and
        // per-class reproducers, which is where its edge comes from.
        anomaly_threshold: baseline * 1.25,
        coverage: coverage.then(|| CoverageParams {
            shrink_budget: 8,
            ..Default::default()
        }),
        ..Default::default()
    };
    let mut m = EventMutator {
        // Both campaigns may flip misbehavior knobs; what differs is
        // whether novelty keeps the resulting behaviors alive.
        mutate_quirks: true,
        ..Default::default()
    };
    let out = fuzz(&base, &mut m, scorer, &params);

    let seen = seen.into_inner();
    let pairs_for = |yaml: &str| -> BTreeSet<(String, String)> {
        seen.iter()
            .rev()
            .find(|(y, _)| y == yaml)
            .map(|(_, p)| p.clone())
            .unwrap_or_default()
    };
    let mut discovered: BTreeSet<(String, String)> = BTreeSet::new();
    match &out.coverage {
        Some(cov) => {
            for e in cov.corpus.entries() {
                discovered.extend(pairs_for(&e.config.to_yaml()));
            }
            for r in &cov.reproducers {
                discovered.extend(pairs_for(&r.shrink.cfg.to_yaml()));
            }
        }
        None => {
            for (scored, _) in &out.anomalies {
                discovered.extend(pairs_for(&scored.cfg.to_yaml()));
            }
        }
    }
    (discovered.len(), out)
}

#[test]
fn coverage_mode_doubles_discovered_violation_pairs_at_fixed_budget() {
    let seed = 0xf1611;
    let (with_coverage, cov_out) = reported_pairs(seed, true);
    let (heuristic_only, _) = reported_pairs(seed, false);
    assert!(
        with_coverage >= 8,
        "coverage campaign too weak to make the comparison meaningful: \
         {with_coverage} pairs"
    );
    assert!(
        with_coverage >= 2 * heuristic_only.max(1),
        "coverage mode must discover >=2x the violation-classed pairs: \
         {with_coverage} vs {heuristic_only}"
    );

    // Acceptance's second half: every violation finding ships a shrunk
    // reproducer that re-triggers its class when re-run.
    let cov = cov_out.coverage.as_ref().expect("coverage mode on");
    let mut checked = 0;
    for r in &cov.reproducers {
        let Some(class) = r.class else { continue };
        assert!(r.shrink.reproduces, "{class:?} reproducer must reproduce");
        let res = lumina_core::orchestrator::run_test(&r.shrink.cfg).unwrap();
        assert!(
            violation_classes(&res).contains(&class),
            "shrunk reproducer lost {class:?}"
        );
        checked += 1;
    }
    assert!(checked >= 1, "campaign proved no violation class at all");
}
