//! Differential proof for the parallel fuzz executor: for the same seed
//! and base configuration, the serial path and the threaded path with any
//! worker count must produce byte-identical campaigns — same score
//! history, same rejections, same anomaly list, same final pool. This is
//! the property that makes parallel campaigns trustworthy: workers buy
//! wall-clock speed, never different results.

use lumina_core::config::TestConfig;
use lumina_core::fuzz::{fuzz, mutate::EventMutator, score, FuzzOutcome, FuzzParams};

fn base() -> TestConfig {
    TestConfig::from_yaml(
        r#"
requester: { nic-type: cx4 }
responder: { nic-type: cx4 }
traffic:
  num-connections: 3
  rdma-verb: write
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 4096
  data-pkt-events:
    - {qpn: 1, psn: 2, type: drop, iter: 1}
"#,
    )
    .unwrap()
}

/// Everything the campaign decided, flattened to exactly comparable
/// (bit-level for floats) form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    history_bits: Vec<u64>,
    rejected: usize,
    best: Option<(u64, String)>,
    anomalies: Vec<(u64, String, String)>,
    final_pool: Vec<(u64, String)>,
}

fn fingerprint(out: &FuzzOutcome) -> Fingerprint {
    Fingerprint {
        history_bits: out.history.iter().map(|s| s.to_bits()).collect(),
        rejected: out.rejected,
        best: out
            .best
            .as_ref()
            .map(|b| (b.score.to_bits(), b.cfg.to_yaml())),
        anomalies: out
            .anomalies
            .iter()
            .map(|(s, d)| (s.score.to_bits(), d.clone(), s.cfg.to_yaml()))
            .collect(),
        final_pool: out
            .final_pool
            .iter()
            .map(|s| (s.score.to_bits(), s.cfg.to_yaml()))
            .collect(),
    }
}

fn campaign(workers: usize) -> Fingerprint {
    let params = FuzzParams {
        pool_size: 4,
        iterations: 12,
        batch_size: 4,
        workers,
        anomaly_threshold: 1.0,
        seed: 0xd1ff,
        ..Default::default()
    };
    let mut m = EventMutator::default();
    fingerprint(&fuzz(&base(), &mut m, score::default_score, &params))
}

#[test]
fn parallel_campaigns_match_serial_exactly() {
    let serial = campaign(0);
    assert!(
        !serial.history_bits.is_empty(),
        "campaign evaluated nothing; the differential would be vacuous"
    );
    for workers in [1, 2, 4] {
        let parallel = campaign(workers);
        assert_eq!(
            serial, parallel,
            "workers={workers} diverged from the serial campaign"
        );
    }
}

#[test]
fn campaigns_find_anomalies_to_compare() {
    // Guard against the differential silently degenerating: with the
    // drop-seeded base and a low threshold the campaign must score
    // anomalies, so the fingerprint comparison covers that path too.
    let serial = campaign(0);
    assert!(
        !serial.anomalies.is_empty(),
        "expected at least one anomaly in the differential corpus"
    );
}

#[test]
fn worker_count_does_not_leak_into_reports() {
    // Same thing one level down: a single config run on the orchestrator
    // is already deterministic; the executor must preserve that when the
    // run happens on a worker thread. Compare a run executed inline with
    // one executed through a workers=2 campaign of one candidate batch.
    let params = FuzzParams {
        pool_size: 1,
        iterations: 2,
        batch_size: 2,
        workers: 2,
        anomaly_threshold: -1.0, // record everything as an anomaly
        seed: 7,
        ..Default::default()
    };
    let mut m = EventMutator {
        events_only: true,
        ..Default::default()
    };
    let threaded = fuzz(&base(), &mut m, score::default_score, &params);
    for (scored, _) in &threaded.anomalies {
        let inline = lumina_core::orchestrator::run_test(&scored.cfg).unwrap();
        let (s, _) = score::default_score(&scored.cfg, &inline);
        assert_eq!(s.to_bits(), scored.score.to_bits());
    }
}
