//! End-to-end tests for the chaos plane, the liveness/recovery oracle and
//! the conformance interaction guard (chaos PR, satellites 2–3).
//!
//! Three contracts are nailed down here:
//!
//! 1. **Absent-by-default, byte-for-byte.** A `chaos:` section that
//!    schedules nothing is indistinguishable from no section at all —
//!    the full `report_json()` matches the pristine run exactly, because
//!    a noop plane makes zero RNG draws and installs zero hooks.
//! 2. **Chaos is never blamed on the DUT.** Environment-injected loss
//!    must not flip conformance verdicts; device-injected quirks must
//!    keep flipping them even under chaos. The 2×2 cross-matrix pivots on
//!    the `wrong-ack-psn` quirk because its violation class
//!    (`ack-psn-invalid`) is provable from mirror evidence no amount of
//!    chaos can fake: every frame the responder ACKs passed the switch.
//! 3. **The oracle proves wedges and survives garbage.** The shipped
//!    `chaos_demo.yaml` preset must keep producing its typed
//!    `unaccounted` liveness violation, and `recovery::analyze` must be
//!    panic-free on arbitrary hostile accounting + degraded traces.

use lumina_core::analyzers::recovery::{
    self, FlowAccount, LivenessViolation, QpEndState, RecoveryOpts,
};
use lumina_core::analyzers::{conformance, ConformanceOpts};
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use lumina_dumper::{reconstruct_lossy, CapturedPacket};
use lumina_packet::aeth::{Aeth, AethSyndrome};
use lumina_packet::builder::DataPacketBuilder;
use lumina_packet::opcode::Opcode;
use lumina_packet::reth::Reth;
use lumina_sim::{ChaosWindow, SimTime};
use lumina_switch::events::EventType;
use lumina_switch::mirror;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// A small deterministic write workload; `chaos` appends a loss-burst
/// schedule, `quirks` appends a device-misbehavior plane.
fn matrix_yaml(chaos: bool, quirks: bool) -> String {
    let mut y = String::from(
        "requester:\n  nic-type: cx5\n\
         responder:\n  nic-type: cx5\n\
         traffic:\n\
         \x20 num-connections: 4\n\
         \x20 rdma-verb: write\n\
         \x20 num-msgs-per-qp: 4\n\
         \x20 mtu: 1024\n\
         \x20 message-size: 8192\n\
         network:\n\
         \x20 seed: 7\n\
         \x20 horizon-ms: 60000\n",
    );
    if chaos {
        y.push_str(
            "chaos:\n\
             \x20 seed: 33\n\
             \x20 links:\n\
             \x20   - link: requester\n\
             \x20     bursts:\n\
             \x20       - {at-us: 20, duration-us: 600, loss-prob: 0.25}\n",
        );
    }
    if quirks {
        y.push_str(
            "quirks:\n\
             \x20 seed: 99\n\
             \x20 wrong-ack-psn-prob: 0.50\n",
        );
    }
    y
}

fn run_yaml(yaml: &str) -> lumina_core::orchestrator::TestResults {
    let cfg = TestConfig::from_yaml(yaml).expect("test yaml parses");
    run_test(&cfg).expect("run completes")
}

fn report_string(yaml: &str) -> String {
    let res = run_yaml(yaml);
    serde_json::to_string_pretty(&res.report_json().expect("report renders"))
        .expect("report is json")
}

// ---------------------------------------------------------------------
// 1. Noop chaos section == pristine run, byte for byte.
// ---------------------------------------------------------------------

#[test]
fn noop_chaos_section_is_byte_identical_to_pristine() {
    let base = "requester:\n  nic-type: cx5\n\
                responder:\n  nic-type: cx5\n\
                traffic:\n\
                \x20 num-connections: 2\n\
                \x20 rdma-verb: write\n\
                \x20 num-msgs-per-qp: 4\n\
                \x20 mtu: 1024\n\
                \x20 message-size: 4096\n\
                network:\n\
                \x20 seed: 7\n\
                \x20 horizon-ms: 1000\n";
    // A `chaos:` section with a seed but no windows anywhere: parses,
    // validates, and must schedule nothing.
    let noop = format!(
        "{base}chaos:\n\
         \x20 seed: 12345\n\
         \x20 links:\n\
         \x20   - link: requester\n\
         \x20   - link: responder\n"
    );
    let pristine = report_string(base);
    let with_noop = report_string(&noop);
    assert!(
        !pristine.contains("\"chaos\""),
        "pristine run must not report a chaos section"
    );
    assert_eq!(
        pristine, with_noop,
        "a noop chaos section must leave the full report byte-identical"
    );
}

// ---------------------------------------------------------------------
// 2. The shipped chaos demo keeps proving its liveness failure.
// ---------------------------------------------------------------------

#[test]
fn chaos_demo_preset_trips_the_liveness_oracle() {
    let yaml = std::fs::read_to_string(repo_root().join("configs/chaos_demo.yaml"))
        .expect("chaos_demo.yaml exists");
    let res = run_yaml(&yaml);

    let rec = res.recovery.as_ref().expect("chaos run computes recovery");
    assert!(!rec.live, "the flap-to-horizon must wedge the run");
    assert!(
        !rec.violations.is_empty()
            && rec
                .violations
                .iter()
                .all(|v| matches!(v, LivenessViolation::Unaccounted { .. })),
        "the wedge manifests as typed unaccounted-message violations: {:?}",
        rec.violations
    );
    // One recoverable burst + one wedging flap = two histogram-keyed
    // windows, exactly one of which never recovers.
    assert_eq!(rec.windows.len(), 2, "burst + flap = two chaos windows");
    assert!(
        rec.windows[0].time_to_recovery_us.is_some(),
        "the early loss burst must be recovered from"
    );
    assert!(
        rec.windows[1].time_to_recovery_us.is_none(),
        "the flap runs to the horizon and never recovers"
    );
    assert_eq!(rec.ttr_histogram.unrecovered, 1);
    assert!(
        rec.ttr_histogram.buckets.iter().sum::<u64>() == 1,
        "exactly one window lands in the recovery histogram"
    );
}

// ---------------------------------------------------------------------
// 3. Chaos × quirks cross-matrix: verdicts flip only when quirks are on.
// ---------------------------------------------------------------------

#[test]
fn conformance_verdicts_flip_only_when_quirks_are_on() {
    for (chaos, quirks) in [(false, false), (true, false), (false, true), (true, true)] {
        let res = run_yaml(&matrix_yaml(chaos, quirks));
        let opts = ConformanceOpts::from_results(&res);
        if chaos {
            let drops = res
                .chaos_stats
                .as_ref()
                .map_or(0, |cs| cs.data_drops() + cs.corruptions + cs.reorders);
            assert!(drops > 0, "the burst must actually destroy frames");
            assert!(
                opts.external_loss,
                "chaos destruction must surface as external loss"
            );
        } else {
            assert!(!opts.external_loss);
        }
        let trace = res.trace.as_ref().expect("run produced a trace");
        let rep = conformance::analyze(trace, &res.conns, &opts);
        let classes: Vec<&str> = rep.violations.iter().map(|v| v.class.label()).collect();
        if quirks {
            // The wrong-ack-psn quirk must stay detectable with and
            // without chaos: an ACK beyond the mirror-seen frontier is
            // provably the DUT's doing.
            assert!(
                !rep.compliant && classes.contains(&"ack-psn-invalid"),
                "chaos={chaos} quirks={quirks}: expected ack-psn-invalid, got {classes:?}"
            );
        } else {
            // No quirks: compliant, chaos or not. Environment-injected
            // loss alone may never be graded as a DUT violation.
            assert!(
                rep.compliant,
                "chaos={chaos} quirks={quirks}: chaos was blamed on the DUT: {classes:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------
// 4. The recovery oracle is panic-free on hostile inputs.
// ---------------------------------------------------------------------

/// One plausibly-shaped mirror capture (data or ACK) with an arbitrary
/// PSN, so hostile traces exercise the oracle's wire walk.
fn hostile_capture(seq: u64, flavor: u8, psn: u32, qpn: u32) -> CapturedPacket {
    let req_ip = Ipv4Addr::new(10, 0, 0, 1);
    let rsp_ip = Ipv4Addr::new(10, 0, 0, 2);
    let b = DataPacketBuilder::new();
    let frame = match flavor % 4 {
        0 => b
            .opcode(Opcode::RdmaWriteFirst)
            .dest_qp(qpn)
            .psn(psn)
            .reth(Reth {
                vaddr: 0x1000,
                rkey: 7,
                dma_len: 4096,
            })
            .payload_len(1024)
            .build(),
        1 => b
            .opcode(Opcode::RdmaWriteLast)
            .dest_qp(qpn)
            .psn(psn)
            .ack_req(true)
            .payload_len(256)
            .build(),
        2 => b
            .src_ip(rsp_ip)
            .dst_ip(req_ip)
            .opcode(Opcode::Acknowledge)
            .dest_qp(qpn)
            .psn(psn)
            .aeth(Aeth {
                syndrome: AethSyndrome::Ack { credit: 31 },
                msn: psn & 0xff_ffff,
            })
            .build(),
        _ => b
            .opcode(Opcode::RdmaWriteMiddle)
            .dest_qp(qpn)
            .psn(psn)
            .payload_len(1024)
            .build(),
    };
    let mut buf = frame.emit().to_vec();
    mirror::embed(
        &mut buf,
        seq,
        SimTime::from_nanos(seq.wrapping_mul(977)),
        EventType::None,
        Some((seq % 65_536) as u16),
    );
    mirror::restore_dport(&mut buf);
    let orig_len = buf.len();
    CapturedPacket {
        rx_time: SimTime::ZERO,
        orig_len,
        bytes: buf,
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// Arbitrary accounting, inconsistent QP end-states, inverted and
    /// overlapping chaos windows, absurd amplification limits, and a
    /// bit-rotted trace — the verdict on garbage is unspecified, but the
    /// oracle must produce one without panicking and keep its shape
    /// invariants.
    #[test]
    fn recovery_oracle_never_panics_on_hostile_inputs(
        flow_words in prop::collection::vec(any::<u64>(), 0..32),
        qp_words in prop::collection::vec(any::<u64>(), 0..8),
        window_words in prop::collection::vec(any::<u64>(), 0..6),
        destroyed in any::<u64>(),
        limit_raw in any::<u64>(),
        n_frames in 0usize..40,
        rot_mask in any::<u64>(),
        rot_xor in any::<u8>(),
        with_trace in any::<bool>(),
    ) {
        // Chunks of four arbitrary words become one flow each; the counts
        // are full-range u64s, so completed+failed routinely exceeds (or
        // overflows past) planned.
        let flows: Vec<FlowAccount> = flow_words
            .chunks_exact(4)
            .map(|c| FlowAccount {
                qpn: c[0] as u32,
                planned: c[1],
                completed: c[2],
                failed: c[3],
            })
            .collect();
        // One word per QP: low bits drive every boolean combination,
        // including the contradictory ones (errored + timer armed, …).
        let qps: Vec<QpEndState> = qp_words
            .iter()
            .map(|w| QpEndState {
                qpn: (w >> 32) as u32,
                requester: w & 1 != 0,
                errored: w & 2 != 0,
                unacked: w & 4 != 0,
                timer_armed: w & 8 != 0,
            })
            .collect();
        // Windows are deliberately unsorted, overlapping, and sometimes
        // inverted (until < from).
        let windows: Vec<ChaosWindow> = window_words
            .iter()
            .map(|w| ChaosWindow {
                from: SimTime::from_micros(*w >> 32),
                until: SimTime::from_micros(*w & 0xffff_ffff),
            })
            .collect();
        // Sweep the limit through None, NaN, ±infinity, zero, negatives
        // and ordinary values.
        let limit = match limit_raw % 6 {
            0 => None,
            1 => Some(f64::NAN),
            2 => Some(f64::INFINITY),
            3 => Some(-1.0),
            4 => Some(0.0),
            _ => Some((limit_raw % 1000) as f64 / 10.0),
        };
        let opts = RecoveryOpts {
            windows,
            destroyed,
            amplification_limit: limit,
        };

        let mut caps: Vec<CapturedPacket> = (0..n_frames as u64)
            .map(|s| {
                let psn = (s as u32).wrapping_mul(2_654_435_761) & 0xff_ffff;
                hostile_capture(s, (s % 4) as u8, psn, 0x22)
            })
            .collect();
        for (i, c) in caps.iter_mut().enumerate() {
            if rot_mask >> (i % 64) & 1 == 1 && rot_xor != 0 {
                let off = i % c.bytes.len().max(1);
                if let Some(b) = c.bytes.get_mut(off) {
                    *b ^= rot_xor;
                }
            }
        }
        let lossy = reconstruct_lossy(&[caps]);
        let trace = with_trace.then_some(&lossy.trace);

        let rep = recovery::analyze(trace, &flows, &qps, &opts);
        prop_assert_eq!(rep.windows.len(), opts.windows.len());
        prop_assert!(rep.amplification_limit.is_finite() && rep.amplification_limit > 0.0);
        prop_assert_eq!(rep.live, rep.violations.is_empty());
        for w in &rep.windows {
            prop_assert!((0.0..=f64::MAX).contains(&w.goodput_ratio));
        }
        // The verdict must serialize (it lands in report_json and the
        // telemetry registry on every chaos run).
        prop_assert!(serde_json::to_string(&rep).is_ok());
    }
}
