//! Pcap round-trip corpus (robustness PR, ingestion satellite).
//!
//! Every preset in `configs/` runs live, exports its trace as pcap, and
//! re-ingests through the offline pipeline (format parse → frame
//! recovery → streaming reconstruction → discovery-mode conformance).
//! The offline grade must match the live one: same compliant flag, same
//! violation classes, every connection rediscovered from the wire alone.
//!
//! One documented exception: receiver-side ICRC drops live only in NIC
//! counters, which a capture file cannot carry. Presets that corrupt
//! packets (`quirks_demo`) therefore lose the `icrc-miscompute` finding
//! offline and may gain `unacked-delivery` findings for retransmissions
//! the live oracle could justify against the counter. Both grades still
//! agree on the compliant flag.

use lumina_core::analyzers::conformance::{analyze, ConformanceOpts};
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use lumina_core::{ingest_reader, IngestParams, Violation};
use std::collections::BTreeMap;
use std::io::Cursor;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn corpus() -> Vec<(String, TestConfig)> {
    let dir = repo_root().join("configs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("configs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("yaml") {
            continue;
        }
        let yaml = std::fs::read_to_string(&path).unwrap();
        let cfg =
            TestConfig::from_yaml(&yaml).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        out.push((stem, cfg));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(out.len() >= 8, "corpus shrank: {}", out.len());
    out
}

fn class_counts(violations: &[Violation]) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    for v in violations {
        *m.entry(v.class.label()).or_insert(0) += 1;
    }
    m
}

fn params_for(cfg: &TestConfig, retain: bool) -> IngestParams {
    IngestParams {
        context: Some(cfg.clone()),
        retain_trace: retain,
        progress: false,
        ..IngestParams::default()
    }
}

#[test]
fn every_preset_reingests_to_the_live_verdict() {
    for (name, cfg) in corpus() {
        let res = run_test(&cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        let trace = res
            .trace
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: live run produced no trace"));
        let opts = ConformanceOpts::from_results(&res);
        let live = analyze(trace, &res.conns, &opts);

        let mut pcap = Vec::new();
        trace.write_pcap(&mut pcap).unwrap();
        let out = ingest_reader(Cursor::new(&pcap[..]), &name, &params_for(&cfg, false))
            .unwrap_or_else(|e| panic!("{name}: ingest failed: {e}"));

        assert_eq!(out.records, trace.len() as u64, "{name}: record count");
        assert!(
            out.pristine(),
            "{name}: a pristine export must re-ingest pristine: {:?} {:?}",
            out.integrity,
            out.first_malformed
        );
        assert_eq!(
            out.conns_tracked,
            res.conns.len(),
            "{name}: discovery must find every live connection"
        );
        assert_eq!(out.unattributed, 0, "{name}: no packet left unattributed");
        assert_eq!(
            out.conformance.compliant, live.compliant,
            "{name}: verdict diverged (live {:?} vs ingest {:?})",
            live.violations, out.conformance.violations
        );

        let mut live_classes = class_counts(&live.violations);
        let mut ingest_classes = class_counts(&out.conformance.violations);
        let icrc =
            res.requester_counters.rx_icrc_errors + res.responder_counters.rx_icrc_errors;
        if icrc > 0 {
            // ICRC evidence is invisible offline (see module docs).
            for m in [&mut live_classes, &mut ingest_classes] {
                m.remove("icrc-miscompute");
                m.remove("unacked-delivery");
            }
        }
        assert_eq!(
            live_classes, ingest_classes,
            "{name}: violation classes diverged"
        );
    }
}

#[test]
fn reexported_capture_is_byte_identical() {
    // `emit()` is the canonical wire form, so export → ingest → export
    // must be a fixed point: same bytes, timestamps and claimed lengths.
    let yaml = std::fs::read_to_string(repo_root().join("configs/listing2.yaml")).unwrap();
    let cfg = TestConfig::from_yaml(&yaml).unwrap();
    let res = run_test(&cfg).unwrap();
    let trace = res.trace.as_ref().unwrap();

    let mut first = Vec::new();
    trace.write_pcap(&mut first).unwrap();
    let out = ingest_reader(Cursor::new(&first[..]), "listing2", &params_for(&cfg, true)).unwrap();
    let replayed = out.trace.expect("retain_trace keeps the merged trace");
    assert_eq!(replayed.len(), trace.len());

    let mut second = Vec::new();
    replayed.write_pcap(&mut second).unwrap();
    assert_eq!(first, second, "re-export is not a fixed point");
}

#[test]
fn truncated_copy_still_grades_the_prefix_under_a_memory_bound() {
    let yaml =
        std::fs::read_to_string(repo_root().join("configs/fig08_retrans_probe.yaml")).unwrap();
    let cfg = TestConfig::from_yaml(&yaml).unwrap();
    let res = run_test(&cfg).unwrap();
    let trace = res.trace.as_ref().unwrap();

    let mut pcap = Vec::new();
    trace.write_pcap(&mut pcap).unwrap();
    // Cut mid-record, deep enough that a meaningful prefix survives.
    let cut = pcap.len() * 2 / 5 + 13;
    let params = IngestParams {
        max_resident_bytes: 4096,
        ..params_for(&cfg, false)
    };
    let out = ingest_reader(Cursor::new(&pcap[..cut]), "fig08-cut", &params)
        .expect("mid-file damage must degrade, not error");

    assert!(out.records > 0, "the readable prefix must be graded");
    assert!(out.records < trace.len() as u64);
    let (offset, msg) = out
        .first_malformed
        .as_ref()
        .expect("the cut must be reported with its offset");
    assert!(*offset <= cut as u64, "offset {offset} past the cut {cut}");
    assert!(!msg.is_empty());
    assert!(!out.pristine());
    assert!(
        out.conformance.partial,
        "a truncated capture must grade as partial evidence"
    );
}
