//! Property-based tests over the whole stack: for randomized traffic
//! shapes and deterministic event injections, the testbed must complete
//! the traffic, keep the trace intact, and stay Go-back-N compliant.

use lumina_core::analyzers::gbn_fsm;
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn build_cfg(
    nic: &str,
    verb: &str,
    conns: u32,
    msgs: u32,
    msg_size: u32,
    mtu: u32,
    events: &[(u32, u32, &str, u32)],
    seed: u64,
) -> TestConfig {
    let ev: String = events
        .iter()
        .map(|(q, p, ty, it)| format!("\n    - {{qpn: {q}, psn: {p}, type: {ty}, iter: {it}}}"))
        .collect();
    TestConfig::from_yaml(&format!(
        r#"
requester: {{ nic-type: {nic} }}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: {conns}
  rdma-verb: {verb}
  num-msgs-per-qp: {msgs}
  mtu: {mtu}
  message-size: {msg_size}
  data-pkt-events:{ev}
network:
  seed: {seed}
  horizon-ms: 60000
"#,
        ev = if ev.is_empty() { " []".to_string() } else { ev },
    ))
    .unwrap()
}

fn arb_nic() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["cx4", "cx5", "cx6", "e810"])
}

fn arb_verb() -> impl Strategy<Value = &'static str> {
    prop::sample::select(vec!["write", "read", "send"])
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn clean_traffic_always_completes_with_intact_trace(
        nic in arb_nic(),
        verb in arb_verb(),
        conns in 1u32..5,
        msgs in 1u32..4,
        msg_size in prop::sample::select(vec![1u32, 777, 1024, 4096, 20_000]),
        seed in 0u64..1000,
    ) {
        let cfg = build_cfg(nic, verb, conns, msgs, msg_size, 1024, &[], seed);
        let res = run_test(&cfg).unwrap();
        prop_assert!(res.traffic_completed(), "{nic}/{verb}");
        prop_assert!(res.integrity.passed(), "{nic}/{verb}: {:?}", res.integrity);
        prop_assert_eq!(res.requester_counters.retransmitted_packets, 0);
        let bytes: u64 = res.requester_metrics.flows.values().map(|f| f.bytes).sum();
        prop_assert_eq!(bytes, conns as u64 * msgs as u64 * msg_size as u64);
        // The trace is Go-back-N compliant (trivially, but the analyzer
        // must not produce false positives on clean traffic).
        let rep = gbn_fsm::analyze(res.trace.as_ref().unwrap(), &res.conns);
        prop_assert!(rep.compliant(), "{:?}", rep.violations());
    }

    #[test]
    fn single_drop_always_recovers_and_stays_compliant(
        nic in prop::sample::select(vec!["cx5", "cx6"]),
        verb in arb_verb(),
        drop_pkt in 1u32..30,
        seed in 0u64..1000,
    ) {
        // One 30-packet message; drop any one packet.
        let cfg = build_cfg(
            nic, verb, 1, 1, 30 * 1024, 1024,
            &[(1, drop_pkt, "drop", 1)], seed,
        );
        let res = run_test(&cfg).unwrap();
        prop_assert!(res.traffic_completed(), "{nic}/{verb}/pkt{drop_pkt}");
        prop_assert!(res.integrity.passed());
        prop_assert_eq!(res.events_fired, 1);
        prop_assert!(res.requester_counters.retransmitted_packets >= 1);
        let rep = gbn_fsm::analyze(res.trace.as_ref().unwrap(), &res.conns);
        prop_assert!(rep.compliant(), "{nic}/{verb}/pkt{drop_pkt}: {:?}", rep.violations());
    }

    #[test]
    fn double_drop_same_packet_recovers(
        verb in prop::sample::select(vec!["write", "read"]),
        drop_pkt in 2u32..9,
        seed in 0u64..1000,
    ) {
        // Drop a packet and its retransmission — the Listing 2 pattern.
        let cfg = build_cfg(
            "cx5", verb, 1, 1, 10 * 1024, 1024,
            &[(1, drop_pkt, "drop", 1), (1, drop_pkt, "drop", 2)], seed,
        );
        let res = run_test(&cfg).unwrap();
        prop_assert!(res.traffic_completed());
        prop_assert_eq!(res.events_fired, 2);
        let rep = gbn_fsm::analyze(res.trace.as_ref().unwrap(), &res.conns);
        prop_assert!(rep.compliant(), "{:?}", rep.violations());
    }

    #[test]
    fn corrupt_detected_and_recovered(
        pkt in 1u32..10,
        seed in 0u64..1000,
    ) {
        let cfg = build_cfg(
            "cx6", "write", 1, 1, 10 * 1024, 1024,
            &[(1, pkt, "corrupt", 1)], seed,
        );
        let res = run_test(&cfg).unwrap();
        prop_assert!(res.traffic_completed());
        prop_assert_eq!(res.responder_counters.rx_icrc_errors, 1);
        prop_assert!(res.requester_counters.retransmitted_packets >= 1);
    }

    #[test]
    fn ecn_marks_never_break_traffic(
        nic in arb_nic(),
        pkt in 1u32..20,
        seed in 0u64..1000,
    ) {
        let cfg = {
            let mut c = build_cfg(
                nic, "write", 1, 2, 10 * 1024, 1024,
                &[(1, pkt, "ecn", 1)], seed,
            );
            c.requester.dcqcn_rp_enable = true;
            c.responder.dcqcn_np_enable = true;
            c
        };
        let res = run_test(&cfg).unwrap();
        prop_assert!(res.traffic_completed());
        prop_assert_eq!(res.responder_counters.np_ecn_marked_roce_packets, 1);
        // An ECN mark must never cause loss or retransmission.
        prop_assert_eq!(res.requester_counters.retransmitted_packets, 0);
        prop_assert!(res.integrity.passed());
    }
}
