//! Lifecycle tracing is part of the deterministic surface: the flight
//! recorder and its Perfetto export must be byte-identical across
//! same-seed runs, and — because provenance ids are normalized against a
//! baseline captured at enable time — across threads whose provenance
//! counters start at different values (exactly the situation of parallel
//! fuzz workers, each of which replays candidates on its own thread).

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use lumina_sim::telemetry::trace::perfetto_json;
use std::collections::BTreeMap;

const TRACED_YAML: &str = r#"
requester:
  nic-type: cx5
responder:
  nic-type: cx5
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: 4
  mtu: 1024
  message-size: 4096
  tx-depth: 2
trace:
  capacity: 65536
"#;

/// Run the traced config and render both deterministic views.
fn trace_bytes() -> (String, String) {
    let cfg = TestConfig::from_yaml(TRACED_YAML).expect("config parses");
    let res = run_test(&cfg).expect("run succeeds");
    assert!(res.telemetry.is_tracing(), "trace section arms the recorder");
    let mut names = BTreeMap::new();
    for (id, name) in [(0u32, "requester"), (1, "responder"), (2, "switch"), (3, "dumper-0")] {
        names.insert(id, name.to_string());
    }
    res.telemetry.with_recorder(|r| {
        assert!(!r.is_empty(), "instrumented hops recorded");
        let perfetto = serde_json::to_string(&perfetto_json(r, &names)).expect("serializes");
        (r.to_jsonl(), perfetto)
    })
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let (jsonl_a, perfetto_a) = trace_bytes();
    let (jsonl_b, perfetto_b) = trace_bytes();
    assert_eq!(jsonl_a, jsonl_b, "flight recorder differs across runs");
    assert_eq!(perfetto_a, perfetto_b, "Perfetto export differs across runs");
}

#[test]
fn worker_threads_with_different_id_baselines_agree() {
    // Advance this thread's provenance counter the way earlier fuzz
    // candidates would, then trace: the baseline captured at enable time
    // must cancel the offset out.
    for _ in 0..3 {
        let _ = lumina_packet::Frame::from_vec(vec![0u8; 64]);
    }
    let (jsonl_main, perfetto_main) = trace_bytes();

    // A fresh worker thread starts its provenance counter from zero —
    // the same situation as a differently-sized fuzz worker pool
    // handing the candidate to a different thread.
    let handle = std::thread::spawn(trace_bytes);
    let (jsonl_worker, perfetto_worker) = handle.join().expect("worker thread");

    assert_eq!(
        jsonl_main, jsonl_worker,
        "flight recorder depends on which thread ran the test"
    );
    assert_eq!(
        perfetto_main, perfetto_worker,
        "Perfetto export depends on which thread ran the test"
    );
}
