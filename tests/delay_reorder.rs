//! Tests for the §7 future-work injection events: quantitative delay and
//! deterministic packet reordering.

use lumina_core::analyzers::gbn_fsm;
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use lumina_switch::events::EventType;

fn run(events: &str) -> lumina_core::orchestrator::TestResults {
    let yaml = format!(
        r#"
requester: {{ nic-type: cx5 }}
responder: {{ nic-type: cx5 }}
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 10240
  data-pkt-events:{events}
"#
    );
    run_test(&TestConfig::from_yaml(&yaml).unwrap()).unwrap()
}

#[test]
fn delay_event_holds_packet_without_loss() {
    // Delay packet 5 by 100 µs: it arrives far out of order, triggering
    // the same NACK machinery as a loss — but the NIC must still complete
    // and the delayed original must surface as a duplicate.
    let res = run("\n    - {qpn: 1, psn: 5, type: delay, iter: 1, delay-us: 100}");
    assert!(res.traffic_completed());
    assert!(res.integrity.passed());
    assert_eq!(res.events_fired, 1);
    // The responder saw out-of-order arrivals (packets 6.. overtook 5).
    assert!(res.responder_counters.out_of_sequence >= 1);
    // The held packet eventually arrived: counted as a duplicate after
    // the retransmission filled the gap.
    assert!(res.responder_counters.duplicate_request >= 1);
    // The mirror copy is stamped with the delay event type.
    let trace = res.trace.as_ref().unwrap();
    assert_eq!(
        trace.iter().filter(|e| e.event == EventType::Delay).count(),
        1
    );
}

#[test]
fn delay_on_last_packet_is_loss_free() {
    // Delaying the final packet cannot reorder anything: the message just
    // completes later, with no recovery machinery involved.
    let res = run("\n    - {qpn: 1, psn: 10, type: delay, iter: 1, delay-us: 50}");
    assert!(res.traffic_completed());
    assert_eq!(res.requester_counters.retransmitted_packets, 0);
    assert_eq!(res.responder_counters.out_of_sequence, 0);
    // The delay is visible in the MCT.
    let f = res.requester_metrics.flows.values().next().unwrap();
    assert!(f.mcts[0] >= lumina_sim::SimTime::from_micros(50));
}

#[test]
fn reorder_event_swaps_adjacent_packets() {
    // Hold packet 3 behind one later packet: the wire shows 1 2 4 3 5 …
    let res = run("\n    - {qpn: 1, psn: 3, type: reorder, iter: 1, reorder-by: 1}");
    assert!(res.traffic_completed());
    assert!(res.integrity.passed());
    // Exactly one out-of-sequence episode at the responder (packet 4
    // arrived while 3 was expected), then 3 fills the gap.
    assert!(res.responder_counters.out_of_sequence >= 1);
    // The mirror trace records ingress order, so the FSM analyzer cannot
    // replay the receiver's view — it must mark the connection displaced
    // rather than report false violations.
    let rep = gbn_fsm::analyze(res.trace.as_ref().unwrap(), &res.conns);
    assert!(rep.per_conn[0].displaced);
    assert!(rep.compliant(), "{:?}", rep.violations());
    assert_eq!(
        res.trace
            .as_ref()
            .unwrap()
            .iter()
            .filter(|e| e.event == EventType::Reorder)
            .count(),
        1
    );
}

#[test]
fn reorder_at_stream_end_flushes_via_safety_timer() {
    // Reorder the LAST packet: no later packet ever passes, so only the
    // switch's safety flush (1 ms) can release it. The transfer must still
    // complete without retry exhaustion.
    let res = run("\n    - {qpn: 1, psn: 10, type: reorder, iter: 1, reorder-by: 3}");
    assert!(res.traffic_completed());
    let f = res.requester_metrics.flows.values().next().unwrap();
    assert_eq!(f.completed, 1);
    // The flush released the packet roughly 1 ms in; recovery (flush or
    // timeout) must have happened well before the 67 ms timeout budget
    // exhausted.
    assert!(f.mcts[0] < lumina_sim::SimTime::from_millis(200));
}

#[test]
fn delay_and_reorder_validate() {
    let bad_delay = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
  data-pkt-events:
    - {qpn: 1, psn: 1, type: delay, iter: 1}
"#;
    let cfg = TestConfig::from_yaml(bad_delay).unwrap();
    assert!(
        cfg.problems().iter().any(|p| p.contains("delay-us")),
        "{:?}",
        cfg.problems()
    );

    let bad_reorder = r#"
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
  data-pkt-events:
    - {qpn: 1, psn: 1, type: reorder, iter: 1, reorder-by: 0}
"#;
    let cfg = TestConfig::from_yaml(bad_reorder).unwrap();
    assert!(cfg.problems().iter().any(|p| p.contains("reorder-by")));
}
