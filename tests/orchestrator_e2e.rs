//! End-to-end orchestrator tests: Table-1 result collection, determinism,
//! and integrity across verbs and NIC models.

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;

fn cfg(nic: &str, verb: &str, events: &str) -> TestConfig {
    TestConfig::from_yaml(&format!(
        r#"
requester: {{ nic-type: {nic} }}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: 2
  rdma-verb: {verb}
  num-msgs-per-qp: 3
  mtu: 1024
  message-size: 10240
  data-pkt-events:{events}
"#
    ))
    .unwrap()
}

#[test]
fn clean_runs_complete_for_all_nics_and_verbs() {
    for nic in ["cx4", "cx5", "cx6", "e810"] {
        for verb in ["write", "read", "send"] {
            let res = run_test(&cfg(nic, verb, " []")).unwrap();
            assert!(res.traffic_completed(), "{nic}/{verb}");
            assert!(res.integrity.passed(), "{nic}/{verb}: {:?}", res.integrity);
            assert!(res.outcome.is_quiescent(), "{nic}/{verb}");
            // 2 QPs × 3 msgs × 10 KB.
            let bytes: u64 = res
                .requester_metrics
                .flows
                .values()
                .map(|f| f.bytes)
                .sum();
            assert_eq!(bytes, 2 * 3 * 10_240, "{nic}/{verb}");
            assert_eq!(res.requester_counters.retransmitted_packets, 0);
        }
    }
}

#[test]
fn table1_results_all_collected() {
    // Table 1: dumped packets, network stack counters, traffic generator
    // log, switch counters.
    let res = run_test(&cfg(
        "cx5",
        "write",
        "\n    - {qpn: 1, psn: 5, type: drop, iter: 1}",
    ))
    .unwrap();
    // Dumped packets.
    let trace = res.trace.as_ref().expect("trace present");
    assert!(trace.len() > 60);
    // NIC counters, vendor naming.
    assert!(res.requester_vendor_counters.contains_key("packet_seq_err"));
    assert!(res.responder_vendor_counters.contains_key("out_of_sequence"));
    assert_eq!(res.responder_vendor_counters["out_of_sequence"], 5);
    // Generator log.
    assert_eq!(res.requester_metrics.flows.len(), 2);
    assert!(res.requester_metrics.avg_mct().is_some());
    // Switch counters, per port.
    assert!(res.switch_counters.roce_rx_total > 0);
    assert_eq!(res.switch_counters.injected_drops, 1);
    assert!(!res.switch_counters.ports.is_empty());
    let mirrored_ports: u64 = res
        .switch_counters
        .ports
        .values()
        .map(|p| p.mirrored)
        .sum();
    assert_eq!(mirrored_ports, res.switch_counters.mirrored_total);
    // JSON report round-trips.
    let report = res.report_json().unwrap();
    assert_eq!(report["integrity_passed"], true);
    assert_eq!(report["events_fired"], 1);
}

#[test]
fn same_seed_reproduces_identical_traces() {
    let run = || {
        let res = run_test(&cfg(
            "cx6",
            "read",
            "\n    - {qpn: 2, psn: 4, type: drop, iter: 1}",
        ))
        .unwrap();
        res.trace
            .unwrap()
            .iter()
            .map(|e| (e.seq, e.timestamp.as_nanos(), e.frame.bth.psn, e.frame.bth.opcode.value()))
            .collect::<Vec<_>>()
    };
    let a = run();
    assert!(!a.is_empty());
    assert_eq!(a, run());
}

#[test]
fn different_seeds_randomize_qpns_and_psns() {
    let mut c1 = cfg("cx5", "write", " []");
    let mut c2 = cfg("cx5", "write", " []");
    c1.network.seed = 1;
    c2.network.seed = 2;
    let r1 = run_test(&c1).unwrap();
    let r2 = run_test(&c2).unwrap();
    // QPNs and IPSNs are generated at runtime from the seed (§3.2).
    assert_ne!(
        (r1.conns[0].requester.qpn, r1.conns[0].requester.ipsn),
        (r2.conns[0].requester.qpn, r2.conns[0].requester.ipsn)
    );
    // Both still pass integrity and complete.
    assert!(r1.integrity.passed() && r2.integrity.passed());
}

#[test]
fn heterogeneous_nics_work() {
    let yaml = r#"
requester: { nic-type: cx5 }
responder: { nic-type: e810 }
traffic:
  num-connections: 1
  rdma-verb: write
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 4096
"#;
    let res = run_test(&TestConfig::from_yaml(yaml).unwrap()).unwrap();
    assert!(res.traffic_completed());
    // Vendor views differ per side.
    assert!(res.requester_vendor_counters.contains_key("np_cnp_sent"));
    assert!(res.responder_vendor_counters.contains_key("cnpSent"));
}

#[test]
fn invalid_config_rejected_with_reasons() {
    let mut c = cfg("cx5", "write", " []");
    c.traffic.rdma_verb = "teleport".into();
    let err = match run_test(&c) {
        Err(e) => e,
        Ok(_) => panic!("invalid config must be rejected"),
    };
    assert!(err.to_string().contains("rdma-verb"), "{err}");
}

#[test]
fn mtu_variants_complete() {
    for mtu in [256u32, 512, 1024, 4096] {
        let mut c = cfg("cx5", "write", " []");
        c.traffic.mtu = mtu;
        let res = run_test(&c).unwrap();
        assert!(res.traffic_completed(), "mtu {mtu}");
        assert!(res.integrity.passed(), "mtu {mtu}");
    }
}

#[test]
fn barrier_sync_rounds_complete_in_lockstep() {
    let yaml = r#"
requester: { nic-type: cx5 }
responder: { nic-type: cx5 }
traffic:
  num-connections: 4
  rdma-verb: write
  num-msgs-per-qp: 5
  mtu: 1024
  message-size: 10240
  barrier-sync: true
"#;
    let res = run_test(&TestConfig::from_yaml(yaml).unwrap()).unwrap();
    assert!(res.traffic_completed());
    for f in res.requester_metrics.flows.values() {
        assert_eq!(f.completed, 5);
    }
}

#[test]
fn unfired_events_reported() {
    // An event aimed at a retransmission that never happens stays unfired.
    let res = run_test(&cfg(
        "cx5",
        "write",
        "\n    - {qpn: 1, psn: 5, type: drop, iter: 9}",
    ))
    .unwrap();
    assert_eq!(res.events_fired, 0);
    assert_eq!(res.events_unfired, 1);
    assert_eq!(res.requester_counters.retransmitted_packets, 0);
}

#[test]
fn telemetry_journal_identical_across_same_seed_runs() {
    // A drop event exercises the eventful journal paths: switch drop,
    // timeout/NACK, Go-back-N rollback, retransmission.
    let run = || {
        run_test(&cfg(
            "cx5",
            "write",
            "\n    - {qpn: 1, psn: 5, type: drop, iter: 1}",
        ))
        .unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.telemetry.journal_len() > 0, "journal must not be empty");
    if let Some((n, la, lb)) = lumina_sim::testutil::journal_diff(&a.telemetry, &b.telemetry) {
        panic!("telemetry journals diverge at line {n}:\n  a: {la}\n  b: {lb}");
    }
    // The whole deterministic snapshot (journal summary + registry) and the
    // report embedding it must also be byte-stable.
    assert_eq!(
        serde_json::to_string(&a.telemetry.deterministic_snapshot()).unwrap(),
        serde_json::to_string(&b.telemetry.deterministic_snapshot()).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&a.report_json().unwrap()).unwrap(),
        serde_json::to_string(&b.report_json().unwrap()).unwrap()
    );
}

#[test]
fn telemetry_journal_records_drop_and_recovery_events() {
    let res = run_test(&cfg(
        "cx5",
        "write",
        "\n    - {qpn: 1, psn: 5, type: drop, iter: 1}",
    ))
    .unwrap();
    let mut kinds: Vec<String> = Vec::new();
    res.telemetry
        .for_each_event(|e| kinds.push(e.kind.to_string()));
    // A dropped middle packet recovers through the NACK path.
    for expected in ["mirror.emit", "drop", "gbn.rollback", "retransmit", "flow.done"] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "journal missing {expected:?}; kinds present: {kinds:?}"
        );
    }

    // Dropping the final data packet (1-based psn 30 of 3 × 10-packet
    // messages) leaves nothing to NACK against, so recovery must come from
    // the retransmission timeout instead.
    let res_to = run_test(&cfg(
        "cx5",
        "write",
        "\n    - {qpn: 1, psn: 30, type: drop, iter: 1}",
    ))
    .unwrap();
    let mut to_kinds: Vec<String> = Vec::new();
    res_to
        .telemetry
        .for_each_event(|e| to_kinds.push(e.kind.to_string()));
    for expected in ["drop", "timeout", "gbn.rollback", "retransmit"] {
        assert!(
            to_kinds.iter().any(|k| k == expected),
            "timeout journal missing {expected:?}; kinds present: {to_kinds:?}"
        );
    }
    // Registry: every simulation node contributed at least one metric set.
    let snap = res.telemetry.deterministic_snapshot();
    let nodes = snap.get("nodes").and_then(|n| n.as_object()).unwrap();
    assert!(nodes.len() >= 4, "req, rsp, switch and dumper expected");
    let global = snap.get("global").and_then(|g| g.as_object()).unwrap();
    assert!(global.get("engine").is_some(), "engine stats recorded globally");
}
