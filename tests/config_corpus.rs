//! Every shipped preset in `configs/` must parse, validate, and — except
//! the deliberately heavy ones — run green end to end.

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;

fn corpus() -> Vec<(String, TestConfig)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/configs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("configs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("yaml") {
            continue;
        }
        let yaml = std::fs::read_to_string(&path).unwrap();
        let cfg = TestConfig::from_yaml(&yaml)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        out.push((path.file_name().unwrap().to_string_lossy().into_owned(), cfg));
    }
    assert!(out.len() >= 8, "corpus shrank: {}", out.len());
    out
}

#[test]
fn all_presets_parse_and_validate() {
    for (name, cfg) in corpus() {
        let problems = cfg.problems();
        assert!(problems.is_empty(), "{name}: {problems:?}");
    }
}

#[test]
fn light_presets_run_green() {
    // The noisy-neighbor preset runs hundreds of ms of simulated
    // collapse; exclude it here (its behavior is asserted in
    // tests/figures_shape.rs) and run everything else end to end.
    // Presets declaring an active chaos schedule are also excluded:
    // wedging is their point (tests/chaos_soak.rs asserts it), so
    // "traffic completes" is exactly the wrong invariant for them.
    for (name, cfg) in corpus() {
        if name == "fig11_noisy_neighbor.yaml" || name == "fig10_ets_bug.yaml" {
            continue;
        }
        if cfg.chaos.as_ref().is_some_and(|c| !c.is_noop()) {
            continue;
        }
        let res = run_test(&cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(res.traffic_completed(), "{name}: traffic incomplete");
        assert!(res.integrity.passed(), "{name}: {:?}", res.integrity);
    }
}

#[test]
fn listing2_preset_reproduces_its_events() {
    let yaml = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/configs/listing2.yaml"
    ))
    .unwrap();
    let res = run_test(&TestConfig::from_yaml(&yaml).unwrap()).unwrap();
    assert_eq!(res.events_fired, 3);
    assert_eq!(res.switch_counters.injected_ecn, 1);
    assert_eq!(res.switch_counters.injected_drops, 2);
    assert_eq!(res.responder_counters.np_cnp_sent, 1);
}
