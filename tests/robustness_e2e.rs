//! Degrade-don't-die, end to end: an under-provisioned capture pool
//! yields a *degraded* report (never an absent one), the event-budget
//! watchdog turns a runaway run into a typed error with its own exit
//! code, and `run_supervised` retries infra-classified failures a
//! bounded number of times.

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::{run_supervised, run_test, RetryPolicy};
use lumina_core::Error;
use std::time::Duration;

fn base_cfg() -> TestConfig {
    TestConfig::from_yaml(
        r#"
requester: { nic-type: cx5 }
responder: { nic-type: cx5 }
traffic:
  num-connections: 4
  rdma-verb: write
  num-msgs-per-qp: 4
  mtu: 1024
  message-size: 10240
"#,
    )
    .unwrap()
}

#[test]
fn undersized_ring_degrades_instead_of_discarding_the_report() {
    // A small-MTU 64 KB workload bursts far faster than one dumper with a
    // 4-slot ring can drain; before degraded mode this discarded the
    // whole report.
    let mut cfg = base_cfg();
    cfg.traffic.mtu = 256;
    cfg.traffic.message_size = 65536;
    cfg.network.num_dumpers = 1;
    cfg.network.dumper_ring_capacity = 4;
    cfg.validate().unwrap();
    let res = run_test(&cfg).unwrap();

    // The workload itself is untouched by capture-side overflow.
    assert!(res.traffic_completed());

    // The trace survives in degraded form: present, explicit about gaps.
    let trace = res.trace.as_ref().expect("degraded, never absent");
    assert!(!trace.is_empty());
    assert!(!res.integrity.passed(), "overflow must not pass integrity");
    let deg = res
        .integrity
        .degraded
        .as_ref()
        .expect("ring overflow reports degraded mode");
    assert!(deg.missing > 0);
    assert!(deg.analyzable_fraction < 1.0);
    assert!(!deg.gaps.is_empty());

    // And the JSON report carries the same story for machine consumers.
    let report = res.report_json().unwrap();
    assert!(report["integrity"]["degraded"]["analyzable_fraction"]
        .as_f64()
        .is_some());
}

#[test]
fn event_budget_watchdog_is_a_typed_error_with_exit_code_7() {
    let mut cfg = base_cfg();
    cfg.network.max_events = Some(10);
    cfg.validate().unwrap();
    let err = match run_test(&cfg) {
        Err(e) => e,
        Ok(_) => panic!("10 events cannot finish anything"),
    };
    match &err {
        Error::Watchdog(msg) => assert!(msg.contains("event budget"), "{msg}"),
        other => panic!("expected Watchdog, got {other:?}"),
    }
    assert_eq!(err.exit_code(), 7);
    assert!(err.is_infra_fault(), "watchdog kills are retryable");
}

#[test]
fn run_supervised_retries_watchdogs_a_bounded_number_of_times() {
    let mut cfg = base_cfg();
    cfg.network.max_events = Some(10);
    let policy = RetryPolicy {
        max_attempts: 3,
        backoff: Duration::from_millis(1),
        reseed_faults: true,
        ..RetryPolicy::default()
    };
    let started = std::time::Instant::now();
    let err = match run_supervised(&cfg, &policy) {
        Err(e) => e,
        Ok(_) => panic!("budget never grows"),
    };
    assert_eq!(err.exit_code(), 7, "the final watchdog error surfaces");
    // Bounded: three tiny runs plus 1ms + 2ms of backoff, not forever.
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "supervision must give up after max_attempts"
    );
}

#[test]
fn run_supervised_passes_a_clean_run_through_untouched() {
    let cfg = base_cfg();
    let supervised = run_supervised(&cfg, &RetryPolicy::default()).unwrap();
    let direct = run_test(&cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&supervised.report_json().unwrap()).unwrap(),
        serde_json::to_string(&direct.report_json().unwrap()).unwrap(),
        "supervision is transparent on the happy path"
    );
}

#[test]
fn backoff_delay_is_capped_jittered_and_deterministic() {
    let policy = RetryPolicy {
        backoff: Duration::from_millis(50),
        backoff_cap: Duration::from_millis(200),
        jitter: 0.25,
        ..RetryPolicy::default()
    };
    // Deterministic: same (attempt, seed) → same delay, every time.
    for attempt in 1..6u32 {
        assert_eq!(
            policy.backoff_delay(attempt, 7),
            policy.backoff_delay(attempt, 7)
        );
    }
    // Exponential then clamped: attempt 10 would be 50ms << 9 = 25.6s
    // un-capped; the cap plus ≤25% jitter bounds it to 250ms.
    let late = policy.backoff_delay(10, 7);
    assert!(late >= Duration::from_millis(200), "{late:?}");
    assert!(late <= Duration::from_millis(250), "{late:?}");
    // The first sleep stays near the base, never below it.
    let first = policy.backoff_delay(1, 7);
    assert!(first >= Duration::from_millis(50), "{first:?}");
    assert!(first <= Duration::from_millis(63), "{first:?}");
    // Distinct seeds desynchronize their retry storms.
    assert_ne!(policy.backoff_delay(3, 1), policy.backoff_delay(3, 2));
}

#[test]
fn config_errors_are_never_retried() {
    let mut cfg = base_cfg();
    cfg.traffic.rdma_verb = "teleport".into();
    let policy = RetryPolicy {
        max_attempts: 5,
        backoff: Duration::from_secs(60), // would be felt if retried
        reseed_faults: false,
        ..RetryPolicy::default()
    };
    let started = std::time::Instant::now();
    let err = match run_supervised(&cfg, &policy) {
        Err(e) => e,
        Ok(_) => panic!("invalid verb must be rejected"),
    };
    assert_eq!(err.exit_code(), 2);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "non-infra failures must fail fast, not back off"
    );
}
