//! Golden-report regression corpus: every preset in `configs/` runs
//! through the orchestrator and its `report_json()` — including the
//! deterministic `telemetry` snapshot — must match the checked-in golden
//! byte for byte. The simulator is bit-deterministic, so any diff here is
//! a real behavior change (or an intentional one: regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test golden_reports`).

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn golden_dir() -> PathBuf {
    repo_root().join("tests/golden")
}

fn corpus() -> Vec<(String, TestConfig)> {
    let dir = repo_root().join("configs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir).expect("configs/ exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("yaml") {
            continue;
        }
        let yaml = std::fs::read_to_string(&path).unwrap();
        let cfg = TestConfig::from_yaml(&yaml)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        out.push((stem, cfg));
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    assert!(out.len() >= 8, "corpus shrank: {}", out.len());
    out
}

fn render_report(cfg: &TestConfig, name: &str) -> String {
    let res = run_test(cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    let mut s = serde_json::to_string_pretty(&res.report_json().unwrap()).unwrap();
    s.push('\n');
    s
}

fn updating() -> bool {
    std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn reports_match_goldens() {
    let dir = golden_dir();
    if updating() {
        std::fs::create_dir_all(&dir).unwrap();
    }
    let mut failures = Vec::new();
    for (name, cfg) in corpus() {
        let actual = render_report(&cfg, &name);
        let golden_path = dir.join(format!("{name}.json"));
        if updating() {
            std::fs::write(&golden_path, &actual).unwrap();
            eprintln!("golden updated: {}", golden_path.display());
            continue;
        }
        match std::fs::read_to_string(&golden_path) {
            Err(_) => failures.push(format!(
                "{name}: golden missing at {} (regenerate with UPDATE_GOLDEN=1)",
                golden_path.display()
            )),
            Ok(expected) if expected != actual => {
                failures.push(format!(
                    "{name}: report drifted from golden ({}); first divergence at byte {} — \
                     if intentional, regenerate with UPDATE_GOLDEN=1 cargo test --test golden_reports",
                    golden_path.display(),
                    first_divergence(&expected, &actual),
                ));
            }
            Ok(_) => {}
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

fn first_divergence(a: &str, b: &str) -> usize {
    a.bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()))
}

#[test]
fn goldens_cover_whole_corpus() {
    // A deleted golden must fail loudly, not silently shrink coverage.
    if updating() {
        return;
    }
    let have: Vec<String> = std::fs::read_dir(golden_dir())
        .expect("tests/golden exists — regenerate with UPDATE_GOLDEN=1")
        .map(|e| e.unwrap().path().file_stem().unwrap().to_string_lossy().into_owned())
        .collect();
    for (name, _) in corpus() {
        assert!(
            have.contains(&name),
            "{name} has no golden; regenerate with UPDATE_GOLDEN=1"
        );
    }
}

#[test]
fn report_is_deterministic_across_runs() {
    // The property the goldens rest on: same config, same bytes.
    let (name, cfg) = corpus().swap_remove(0);
    assert_eq!(render_report(&cfg, &name), render_report(&cfg, &name));
}

#[test]
fn frame_plane_counters_stay_out_of_the_report() {
    // The zero-copy frame plane collects allocation/copy counters, but
    // they are surfaced through `TestResults::frame_stats` and the
    // telemetry subcommand only — never `report_json`, whose bytes the
    // goldens above pin. A "frames" key appearing here would silently
    // invalidate every golden.
    let (name, cfg) = corpus().swap_remove(0);
    let res = run_test(&cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    let s = serde_json::to_string(&res.report_json().unwrap()).unwrap();
    assert!(!s.contains("\"frames\":"), "{name}: report gained a frames section");
    // ...while the counters themselves are live: a real run shares
    // buffers across hops instead of copying them.
    assert!(res.frame_stats.frames_shared > 0, "{:?}", res.frame_stats);
    assert!(res.frame_stats.bytes_shared > 0, "{:?}", res.frame_stats);
}

#[test]
fn quirk_free_reports_never_gain_quirk_keys() {
    // The misbehavior plane is absent-by-default: a config without a
    // `quirks:` section must produce a report with no "quirks" or
    // "conformance" key at all — not even an empty one — or every
    // pre-quirk golden silently invalidates. The goldens are the pinned
    // bytes of real runs, so asserting on them asserts on the runs.
    if updating() {
        return;
    }
    let mut quirk_free = 0;
    let mut quirked = 0;
    for (name, cfg) in corpus() {
        let golden = std::fs::read_to_string(golden_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if cfg.quirks.as_ref().is_some_and(|q| !q.is_noop()) {
            quirked += 1;
            assert!(
                golden.contains("\"quirks\"") && golden.contains("\"conformance\""),
                "{name}: quirked preset lost its quirks/conformance report"
            );
        } else {
            quirk_free += 1;
            assert!(
                !golden.contains("\"quirks\""),
                "{name}: quirk-free report gained a quirks section"
            );
            assert!(
                !golden.contains("\"conformance\""),
                "{name}: quirk-free report gained a conformance section"
            );
        }
    }
    // Both sides of the protection must actually be exercised.
    assert!(quirk_free >= 8, "seed corpus shrank: {quirk_free}");
    assert!(quirked >= 1, "no quirked preset left in configs/");
}

#[test]
fn single_run_reports_never_gain_a_coverage_key() {
    // Coverage-guided fuzzing is a campaign-level feature: its map,
    // corpus and reproducers live in the fuzz outcome (and under
    // `--corpus-dir` on disk), never in a single run's report. If a
    // "coverage" key ever appears in a golden, campaign state leaked into
    // the per-run path and every pre-coverage golden silently invalidates.
    if updating() {
        return;
    }
    for (name, _) in corpus() {
        let golden = std::fs::read_to_string(golden_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            !golden.contains("\"coverage\""),
            "{name}: single-run report gained a coverage section"
        );
    }
}

#[test]
fn trace_free_reports_never_gain_a_trace_key() {
    // Lifecycle tracing is absent-by-default: a config without an active
    // `trace:` section must produce a report with no "trace" key at all
    // — not even an empty dissection — or every pre-tracing golden
    // silently invalidates. (The needle includes the colon because every
    // golden legitimately contains "trace_packets".)
    if updating() {
        return;
    }
    let mut trace_free = 0;
    for (name, cfg) in corpus() {
        let golden = std::fs::read_to_string(golden_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if cfg.trace.as_ref().is_some_and(|t| !t.is_noop()) {
            assert!(
                golden.contains("\"trace\":"),
                "{name}: traced preset lost its trace dissection"
            );
        } else {
            trace_free += 1;
            assert!(
                !golden.contains("\"trace\":"),
                "{name}: trace-free report gained a trace section"
            );
        }
    }
    assert!(trace_free >= 8, "seed corpus shrank: {trace_free}");

    // The "on" side of the protection: the same config with tracing
    // enabled gains the dissection (so the absence above is a choice,
    // not a dead feature).
    let (name, mut cfg) = corpus().swap_remove(0);
    cfg.trace = Some(lumina_core::config::TraceSection::default());
    let res = run_test(&cfg).unwrap_or_else(|e| panic!("{name}: {e}"));
    let report = res.report_json().unwrap();
    let trace = report.get("trace").expect("traced run reports a dissection");
    assert!(trace["packets"].as_u64().unwrap_or(0) > 0, "{name}: empty dissection");
}

#[test]
fn chaos_free_reports_never_gain_chaos_keys() {
    // The data-path chaos plane is absent-by-default: a config without an
    // active `chaos:` section must produce a report with no "chaos" or
    // "recovery" key at all — not even an empty one — or every pre-chaos
    // golden silently invalidates. The other direction too: a chaos
    // preset must carry both the plane's stats and the liveness oracle's
    // verdict, so the keys cannot rot into a dead feature.
    if updating() {
        return;
    }
    let mut chaos_free = 0;
    let mut chaotic = 0;
    for (name, cfg) in corpus() {
        let golden = std::fs::read_to_string(golden_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if cfg.chaos.as_ref().is_some_and(|c| !c.is_noop()) {
            chaotic += 1;
            assert!(
                golden.contains("\"chaos\"") && golden.contains("\"recovery\""),
                "{name}: chaos preset lost its chaos/recovery report"
            );
        } else {
            chaos_free += 1;
            assert!(
                !golden.contains("\"chaos\""),
                "{name}: chaos-free report gained a chaos section"
            );
            assert!(
                !golden.contains("\"recovery\""),
                "{name}: chaos-free report gained a recovery section"
            );
        }
    }
    // Both sides of the protection must actually be exercised.
    assert!(chaos_free >= 8, "seed corpus shrank: {chaos_free}");
    assert!(chaotic >= 1, "no chaos preset left in configs/");
}

#[test]
fn device_free_reports_never_gain_a_device_key() {
    // The device registry is opt-in: a config without a `device:` section
    // must produce a report with no "device" key at all — not even an
    // empty one — or every pre-registry golden silently invalidates. The
    // other direction too: a preset that names devices must surface the
    // canonical registry names it resolved to, so the key cannot rot into
    // a dead feature.
    if updating() {
        return;
    }
    let mut device_free = 0;
    let mut pinned = 0;
    for (name, cfg) in corpus() {
        let golden = std::fs::read_to_string(golden_dir().join(format!("{name}.json")))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if cfg.device.is_some() {
            pinned += 1;
            assert!(
                golden.contains("\"device\":"),
                "{name}: device-pinned preset lost its device section"
            );
        } else {
            device_free += 1;
            assert!(
                !golden.contains("\"device\":"),
                "{name}: device-free report gained a device section"
            );
        }
    }
    // Both sides of the protection must actually be exercised.
    assert!(device_free >= 8, "seed corpus shrank: {device_free}");
    assert!(pinned >= 1, "no device-pinned preset left in configs/");
}

#[test]
fn same_timestamp_timers_fire_in_schedule_order() {
    // The calendar-queue scheduler's FIFO contract, observed through the
    // public engine API: events sharing one timestamp pop in the order
    // they were scheduled, and the whole run replays identically.
    use lumina_sim::{Engine, Frame, Node, NodeCtx, PortId, SimTime};
    use std::cell::RefCell;
    use std::rc::Rc;

    struct TokenLog(Rc<RefCell<Vec<u64>>>);
    impl Node for TokenLog {
        fn on_frame(&mut self, _: PortId, _: Frame, _: &mut NodeCtx<'_>) {}
        fn on_timer(&mut self, token: u64, _: &mut NodeCtx<'_>) {
            self.0.borrow_mut().push(token);
        }
    }

    let run = || {
        let mut eng = Engine::new(7);
        let log = Rc::new(RefCell::new(Vec::new()));
        let node = eng.add_node(Box::new(TokenLog(log.clone())));
        // Two bursts at shared instants, scheduled interleaved so queue
        // insertion order differs from timestamp order.
        let (early, late) = (SimTime::from_micros(5), SimTime::from_micros(9));
        for token in 0..100u64 {
            eng.schedule_timer(node, late, 1000 + token);
            eng.schedule_timer(node, early, token);
        }
        eng.run(None);
        let tokens = log.borrow().clone();
        tokens
    };
    let first = run();
    let want: Vec<u64> = (0..100u64).chain(1000..1100).collect();
    assert_eq!(first, want, "FIFO order within a timestamp broke");
    assert_eq!(first, run(), "timer replay is not deterministic");
}
