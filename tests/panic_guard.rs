//! CI guard for the panic audit (robustness PR, satellite 1).
//!
//! The analyzers and the trace reconstructor run over *capture-derived*
//! data — anything a hostile or truncated mirror stream can produce. A
//! panic there takes down the whole verdict, so the audit replaced every
//! `unwrap`/`expect` on that path with typed errors or counted skips.
//! This test keeps the count at zero: it reads the audited sources at
//! test time, strips the `#[cfg(test)]` tail, and fails if a new
//! `.unwrap()` or `.expect(` sneaks into non-test code.

use std::fs;
use std::path::{Path, PathBuf};

/// Source files whose non-test portions must stay unwrap/expect-free.
fn audited_sources() -> Vec<PathBuf> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();

    // Every analyzer, including ones added after this guard was written.
    let analyzers = root.join("crates/core/src/analyzers");
    let entries = fs::read_dir(&analyzers)
        .unwrap_or_else(|e| panic!("cannot list {}: {e}", analyzers.display()));
    for entry in entries {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|x| x == "rs") {
            files.push(path);
        }
    }
    assert!(
        files.len() >= 4,
        "expected the analyzer suite at {}, found {} files",
        analyzers.display(),
        files.len()
    );

    // The trace reconstructor: first consumer of raw capture bytes.
    files.push(root.join("crates/dumper/src/trace.rs"));
    // The lifecycle flight recorder and its Perfetto export: runs inside
    // every traced simulation and renders attacker-shaped record streams.
    files.push(root.join("crates/telemetry/src/trace.rs"));
    // The coverage map/corpus and the reproducer shrinker: both digest
    // campaign-generated data (journals, persisted corpus JSONL, arbitrary
    // mutated configs) inside long unattended fuzz runs, where a panic
    // forfeits the whole campaign's findings.
    files.push(root.join("crates/core/src/fuzz/coverage.rs"));
    files.push(root.join("crates/core/src/fuzz/shrink.rs"));
    // The fault and chaos planes: they rewrite live frames mid-flight on
    // every chaos-injected run, where a panic kills the soak campaign.
    files.push(root.join("crates/sim/src/faults.rs"));
    // The offline-ingestion path: every byte here comes straight from a
    // capture file on disk — the most hostile input surface in the repo.
    files.push(root.join("crates/sim/src/pcap.rs"));
    files.push(root.join("crates/dumper/src/ingest.rs"));
    files.push(root.join("crates/core/src/ingest.rs"));
    files
}

/// The non-test portion of a source file: everything before the first
/// `#[cfg(test)]` attribute (the repo convention puts the test module
/// last in every audited file).
fn non_test_portion(src: &str) -> &str {
    src.split("#[cfg(test)]").next().unwrap_or(src)
}

#[test]
fn analyzers_and_reconstructor_have_no_unwrap_or_expect() {
    let mut offenders = Vec::new();
    for path in audited_sources() {
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let code = non_test_portion(&src);
        for (lineno, line) in code.lines().enumerate() {
            let trimmed = line.trim_start();
            if trimmed.starts_with("//") {
                continue;
            }
            if trimmed.contains(".unwrap()") || trimmed.contains(".expect(") {
                offenders.push(format!("{}:{}: {}", path.display(), lineno + 1, trimmed));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "unwrap/expect on the capture-derived path — use typed errors or \
         counted skips instead:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn guard_actually_sees_the_test_split() {
    // Self-check: the audited files do contain test modules, so the
    // split point exists and the guard is not trivially scanning nothing.
    for path in audited_sources() {
        let src = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let code = non_test_portion(&src);
        assert!(
            !code.is_empty(),
            "{}: empty non-test portion",
            path.display()
        );
    }
}
