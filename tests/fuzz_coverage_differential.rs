//! Differential proof for the coverage-guided executor: for the same seed
//! and base configuration, the coverage map, the corpus, the growth curve
//! and every shrunk reproducer must be byte-identical across worker
//! counts (serial included) and across repeated same-seed runs. Coverage
//! merging happens on the campaign thread in slot order, so the parallel
//! executor's determinism guarantee extends to everything coverage mode
//! adds — this suite is what holds it there.

use lumina_core::config::TestConfig;
use lumina_core::fuzz::{
    coverage::CoverageParams, fuzz, mutate::EventMutator, score, FuzzOutcome, FuzzParams,
};

fn base() -> TestConfig {
    let mut cfg = TestConfig::from_yaml(
        r#"
requester: { nic-type: cx4 }
responder: { nic-type: cx4 }
traffic:
  num-connections: 3
  rdma-verb: read
  num-msgs-per-qp: 2
  mtu: 1024
  message-size: 4096
  data-pkt-events:
    - {qpn: 1, psn: 2, type: drop, iter: 1}
"#,
    )
    .unwrap();
    // A firing quirk knob so the campaign proves violation classes and
    // therefore exercises the shrinking reproducer path.
    cfg.quirks = Some(lumina_core::config::QuirksSection {
        ghost_retransmit_prob: 1.0,
        ..Default::default()
    });
    cfg
}

/// Everything coverage mode decided, flattened to exactly comparable
/// (bit-level for floats, YAML for configs) form.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    history_bits: Vec<u64>,
    map_slots: Vec<u32>,
    map_hits: Vec<(u32, u64)>,
    growth: Vec<(u64, usize)>,
    corpus_jsonl: String,
    reproducers: Vec<(u64, Option<&'static str>, String, bool, String)>,
}

fn fingerprint(out: &FuzzOutcome) -> Fingerprint {
    let cov = out.coverage.as_ref().expect("coverage mode on");
    Fingerprint {
        history_bits: out.history.iter().map(|s| s.to_bits()).collect(),
        map_slots: cov.map.slots().collect(),
        map_hits: cov.map.slots().map(|s| (s, cov.map.hits(s))).collect(),
        growth: cov.growth.clone(),
        corpus_jsonl: cov.corpus.to_jsonl(),
        reproducers: cov
            .reproducers
            .iter()
            .map(|r| {
                (
                    r.candidate,
                    r.class.map(|c| c.label()),
                    r.desc.clone(),
                    r.shrink.reproduces,
                    r.shrink.cfg.to_yaml(),
                )
            })
            .collect(),
    }
}

fn campaign(workers: usize) -> Fingerprint {
    let params = FuzzParams {
        pool_size: 3,
        iterations: 8,
        batch_size: 4,
        workers,
        anomaly_threshold: 1.0,
        seed: 0xc0ff,
        coverage: Some(CoverageParams {
            shrink_budget: 10,
            ..Default::default()
        }),
        ..Default::default()
    };
    let mut m = EventMutator {
        mutate_quirks: true,
        ..Default::default()
    };
    fingerprint(&fuzz(&base(), &mut m, score::violation_score, &params))
}

#[test]
fn coverage_campaigns_match_serial_exactly() {
    let serial = campaign(0);
    assert!(
        !serial.map_slots.is_empty(),
        "campaign covered nothing; the differential would be vacuous"
    );
    assert!(
        !serial.reproducers.is_empty(),
        "campaign shrank nothing; the differential would miss the shrinker"
    );
    for workers in [1, 2, 4] {
        let parallel = campaign(workers);
        assert_eq!(
            serial, parallel,
            "workers={workers} diverged from the serial coverage campaign"
        );
    }
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    // Two independent campaigns, same seed: everything — map, corpus
    // JSONL, reproducer YAMLs — must come out bit-for-bit the same, or a
    // persisted corpus could not be trusted across runs.
    assert_eq!(campaign(2), campaign(2));
}

#[test]
fn corpus_round_trips_through_jsonl() {
    // Persist-and-reload must reproduce the exact corpus: the JSONL is
    // the on-disk format --corpus-dir writes and reloads.
    let serial = campaign(0);
    let back = lumina_core::fuzz::coverage::Corpus::from_jsonl(&serial.corpus_jsonl)
        .expect("machine-written corpus reparses");
    assert_eq!(back.to_jsonl(), serial.corpus_jsonl);
}

#[test]
fn reproducers_retrigger_their_class_when_rerun() {
    // Acceptance: every violation-class reproducer a campaign ships must
    // re-trigger its class on an independent re-run of the shrunk config.
    let serial = campaign(0);
    let mut class_repros = 0;
    for (_, class, _, reproduces, yaml) in &serial.reproducers {
        let Some(class) = class else { continue };
        assert!(reproduces, "{class}: shipped reproducer must reproduce");
        class_repros += 1;
        let cfg = TestConfig::from_yaml(yaml).unwrap();
        let res = lumina_core::orchestrator::run_test(&cfg).unwrap();
        let labels: Vec<&str> = lumina_core::fuzz::coverage::violation_classes(&res)
            .iter()
            .map(|c| c.label())
            .collect();
        assert!(labels.contains(class), "{class} not in {labels:?}");
    }
    assert!(class_repros > 0, "no violation-class reproducers to check");
}
