//! Fault-injection matrix: every fault kind the `faults:` section knows,
//! exercised on the Figure-11 noisy-neighbor preset. Each kind must
//! (a) actually fire, (b) leave the run analyzable (degrade, not die),
//! and (c) be bit-for-bit replayable — two same-seed runs produce
//! byte-identical JSON reports, fault schedule included.

use lumina_core::config::{FaultsSection, FreezeSpec, StallSpec, TestConfig};
use lumina_core::orchestrator::run_test;
use lumina_core::TestResults;

fn fig11_with(faults: FaultsSection) -> TestConfig {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/configs/fig11_noisy_neighbor.yaml"
    );
    let yaml = std::fs::read_to_string(path).expect("preset exists");
    let mut cfg = TestConfig::from_yaml(&yaml).unwrap();
    cfg.faults = Some(faults);
    cfg.validate().expect("fault section validates");
    cfg
}

/// Run twice with the same seed; the reports must match byte for byte.
fn run_replayed(cfg: &TestConfig) -> (TestResults, serde_json::Value) {
    let a = run_test(cfg).unwrap();
    let b = run_test(cfg).unwrap();
    let ja = a.report_json().unwrap();
    let jb = b.report_json().unwrap();
    assert_eq!(
        serde_json::to_string(&ja).unwrap(),
        serde_json::to_string(&jb).unwrap(),
        "same-seed fault runs must replay bit-for-bit"
    );
    (a, ja)
}

#[test]
fn mirror_loss_degrades_the_trace_deterministically() {
    let cfg = fig11_with(FaultsSection {
        mirror_loss_prob: 0.02,
        ..FaultsSection::default()
    });
    let (res, report) = run_replayed(&cfg);
    let dropped = report["faults"]["mirror_copies_dropped"].as_u64().unwrap();
    assert!(dropped > 0, "2% loss on a fig11-sized trace must fire");
    // The trace survives with explicit gaps instead of vanishing.
    let trace = res.trace.as_ref().expect("partial trace kept");
    assert!(!trace.is_empty());
    assert!(!res.integrity.passed());
    let deg = res.integrity.degraded.as_ref().expect("degraded block");
    assert!(deg.analyzable_fraction > 0.5 && deg.analyzable_fraction < 1.0);
    assert!(deg.missing > 0 && !deg.gaps.is_empty());
    assert!(res.traffic_completed(), "faults hit the mirror path only");
}

#[test]
fn mirror_duplication_is_deduped_and_reported() {
    let cfg = fig11_with(FaultsSection {
        mirror_dup_prob: 0.02,
        ..FaultsSection::default()
    });
    let (res, report) = run_replayed(&cfg);
    let duplicated = report["faults"]["mirror_copies_duplicated"]
        .as_u64()
        .unwrap();
    assert!(duplicated > 0);
    let deg = res.integrity.degraded.as_ref().expect("degraded block");
    assert_eq!(deg.duplicates, duplicated, "every extra copy deduped");
    assert_eq!(deg.missing, 0, "duplication alone loses nothing");
    assert_eq!(deg.analyzable_fraction, 1.0);
    assert!(res.traffic_completed());
}

#[test]
fn capture_bit_rot_is_counted_per_run() {
    let cfg = fig11_with(FaultsSection {
        capture_bit_rot_prob: 0.2,
        ..FaultsSection::default()
    });
    let (res, report) = run_replayed(&cfg);
    let corrupted = report["faults"]["captures_corrupted"].as_u64().unwrap();
    assert!(corrupted > 0, "20% bit-rot must corrupt some captures");
    assert_eq!(corrupted, res.captures_corrupted);
    assert!(res.traffic_completed());
    assert!(res.trace.is_some(), "flips never discard the whole trace");
}

#[test]
fn dumper_stall_inflates_service_and_can_overflow() {
    let cfg = fig11_with(FaultsSection {
        dumper_stalls: vec![StallSpec {
            index: None, // every dumper
            at_us: 0,
            duration_us: 200_000,
            slowdown: 50,
        }],
        ..FaultsSection::default()
    });
    let (res, report) = run_replayed(&cfg);
    let stalled = report["faults"]["service_ticks_stalled"].as_u64().unwrap();
    assert!(stalled > 0, "a 200 ms x50 stall must slow some service ticks");
    assert_eq!(stalled, res.service_ticks_stalled);
    assert!(res.traffic_completed(), "stalls never touch the data path");
}

#[test]
fn responder_freeze_recovers_through_retransmission() {
    let cfg = fig11_with(FaultsSection {
        freezes: vec![FreezeSpec {
            node: "responder".into(),
            index: 0,
            at_us: 50,
            duration_us: 200,
        }],
        ..FaultsSection::default()
    });
    let (res, report) = run_replayed(&cfg);
    let frozen = report["faults"]["frames_dropped_frozen"].as_u64().unwrap();
    assert!(frozen > 0, "a mid-run freeze must eat in-flight frames");
    assert!(
        res.traffic_completed(),
        "go-back-N must recover the frozen window"
    );
}

#[test]
fn fault_seed_varies_schedule_without_touching_workload() {
    let mk = |fault_seed| {
        fig11_with(FaultsSection {
            seed: Some(fault_seed),
            mirror_loss_prob: 0.02,
            ..FaultsSection::default()
        })
    };
    let a = run_test(&mk(1)).unwrap();
    let b = run_test(&mk(2)).unwrap();
    // Same workload either way: the engine RNG never sees the fault seed.
    assert_eq!(a.conns[0].requester.qpn, b.conns[0].requester.qpn);
    assert!(a.traffic_completed() && b.traffic_completed());
    // But the fault schedule differs.
    let (fa, fb) = (a.fault_stats.unwrap(), b.fault_stats.unwrap());
    assert_ne!(
        fa.mirror_copies_dropped, fb.mirror_copies_dropped,
        "different fault seeds should drop different copies"
    );
}

#[test]
fn noop_fault_section_matches_a_pristine_run_byte_for_byte() {
    let pristine = {
        let mut cfg = fig11_with(FaultsSection::default());
        cfg.faults = None;
        cfg
    };
    let noop = fig11_with(FaultsSection::default());
    let a = run_test(&pristine).unwrap();
    let b = run_test(&noop).unwrap();
    assert_eq!(
        serde_json::to_string(&a.report_json().unwrap()).unwrap(),
        serde_json::to_string(&b.report_json().unwrap()).unwrap(),
        "an all-zero faults: section must not perturb the run"
    );
    assert!(b.fault_stats.is_none(), "no plane attached for a noop section");
}
