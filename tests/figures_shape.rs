//! Shape tests: every table and figure of the paper, asserted as the
//! orderings/factors/crossovers the paper reports (absolute values come
//! from a simulator, shapes must hold).
//!
//! These call the same harnesses as the `lumina-experiments` binary, with
//! scaled-down parameters where the full figure is expensive.

use lumina_bench::*;

#[test]
fn fig03_iter_sequence_matches_paper() {
    let fig = fig03_iter::run();
    let iters: Vec<u32> = fig.observations.iter().map(|o| o.1).collect();
    assert_eq!(iters, fig03_iter::EXPECTED_ITERS.to_vec());
}

#[test]
fn fig07_overhead_small_and_mirroring_free() {
    let fig = fig07_overhead::run_with_msgs(50);
    for size in fig07_overhead::SIZES_KB {
        let pct = fig.overhead_pct(size);
        // Paper: 4.1–7.2 % over L2-forwarding; allow a generous band but
        // require the overhead to be present, positive and small.
        assert!((0.0..15.0).contains(&pct), "{size}KB: {pct}%");
        // Mirroring has negligible impact: Lumina ≈ Lumina-nm.
        let lum = fig.mct("lumina", size);
        let nm = fig.mct("lumina-nm", size);
        assert!(
            (lum - nm).abs() / lum < 0.01,
            "{size}KB: mirroring changed MCT {lum} vs {nm}"
        );
        // MCT grows with message size.
    }
    assert!(fig.mct("lumina", 100) > fig.mct("lumina", 1));
}

#[test]
fn fig08_nack_generation_shapes() {
    // One representative seqnum per series keeps this test fast; the full
    // sweep runs in the experiments binary.
    let cx4_w = fig08_09_retrans::measure("cx4", "write", 40);
    let cx5_w = fig08_09_retrans::measure("cx5", "write", 40);
    let cx6_w = fig08_09_retrans::measure("cx6", "write", 40);
    let e810_w = fig08_09_retrans::measure("e810", "write", 40);
    // Write generation is low for all NICs (µs scale)…
    for p in [&cx4_w, &cx5_w, &cx6_w, &e810_w] {
        assert!(p.nack_gen_us < 20.0, "{}: {}", p.nic, p.nack_gen_us);
    }
    // …with CX5/CX6 at ≈2 µs, the best of the four (§6.1).
    assert!(cx5_w.nack_gen_us < cx4_w.nack_gen_us);
    assert!(cx6_w.nack_gen_us < e810_w.nack_gen_us);

    // Read generation is wildly asymmetric: ~150 µs on CX4, ~83 ms on
    // E810, still ~2 µs on CX5/CX6 (Figure 8b's log scale).
    let cx4_r = fig08_09_retrans::measure("cx4", "read", 40);
    let cx5_r = fig08_09_retrans::measure("cx5", "read", 40);
    let e810_r = fig08_09_retrans::measure("e810", "read", 40);
    assert!((100.0..250.0).contains(&cx4_r.nack_gen_us), "{}", cx4_r.nack_gen_us);
    assert!(
        (80_000.0..90_000.0).contains(&e810_r.nack_gen_us),
        "{}",
        e810_r.nack_gen_us
    );
    assert!(cx5_r.nack_gen_us < 10.0);
}

#[test]
fn fig09_nack_reaction_shapes() {
    let cx4 = fig08_09_retrans::measure("cx4", "write", 40);
    let cx5 = fig08_09_retrans::measure("cx5", "write", 40);
    let cx6 = fig08_09_retrans::measure("cx6", "write", 40);
    let e810 = fig08_09_retrans::measure("e810", "write", 40);
    // CX5/CX6: 2–6 µs reaction; CX4/E810: ~100–200 µs (two panels of
    // Figure 9a).
    for p in [&cx5, &cx6] {
        assert!((1.0..8.0).contains(&p.nack_react_us), "{}: {}", p.nic, p.nack_react_us);
    }
    for p in [&cx4, &e810] {
        assert!(
            (50.0..250.0).contains(&p.nack_react_us),
            "{}: {}",
            p.nic,
            p.nack_react_us
        );
    }
    // Total retransmission delay of CX5/CX6 lands in the paper's 4–8 µs.
    for p in [&cx5, &cx6] {
        let total = p.nack_gen_us + p.nack_react_us;
        assert!((3.0..10.0).contains(&total), "{}: {total}", p.nic);
    }
}

#[test]
fn fig10_cx6_ets_not_work_conserving() {
    let fig = fig10_ets::run_on("cx6", 5);
    let vanilla = fig.get("multi-queue-vanilla");
    let ecn = fig.get("multi-queue-ecn");
    let single = fig.get("single-queue-ecn");
    // Vanilla: both near the 50 % guarantee.
    assert!((40.0..50.0).contains(&vanilla.qp0_gbps), "{}", vanilla.qp0_gbps);
    assert!((vanilla.qp0_gbps - vanilla.qp1_gbps).abs() < 3.0);
    // ECN slows QP0 substantially.
    assert!(ecn.qp0_gbps < vanilla.qp0_gbps * 0.75, "{}", ecn.qp0_gbps);
    // The bug: QP1 cannot exceed its guarantee although QP0 left
    // bandwidth idle…
    assert!(
        ecn.qp1_gbps < vanilla.qp1_gbps * 1.15,
        "CX6 QP1 absorbed spare bandwidth: {}",
        ecn.qp1_gbps
    );
    // …while the single-queue control shows the bandwidth was there.
    assert!(
        single.qp1_gbps > vanilla.qp1_gbps * 1.25,
        "single queue: {}",
        single.qp1_gbps
    );
}

#[test]
fn fig10_ablation_work_conserving_model_absorbs_spare() {
    let fig = fig10_ets::run_on("cx5", 5);
    let vanilla = fig.get("multi-queue-vanilla");
    let ecn = fig.get("multi-queue-ecn");
    assert!(
        ecn.qp1_gbps > vanilla.qp1_gbps * 1.25,
        "work-conserving model must absorb spare bandwidth: {} vs {}",
        ecn.qp1_gbps,
        vanilla.qp1_gbps
    );
}

#[test]
fn fig11_noisy_neighbor_cliff() {
    // Compact sweep: 24 flows, 3 messages.
    let ok = fig11_noisy::measure("cx4", 8, 24, 3);
    let collapse = fig11_noisy::measure("cx4", 12, 24, 3);
    // i = 8: innocents unaffected (paper: ≈160 µs at 36 flows; fewer flows
    // → less contention, so just require sub-millisecond).
    assert!(ok.innocent_avg_mct_ms < 1.0, "{}", ok.innocent_avg_mct_ms);
    assert_eq!(ok.rx_discards, 0);
    // i = 12: pipeline stall → discards and order-of-magnitude MCT blowup.
    assert!(collapse.rx_discards > 0);
    assert!(
        collapse.innocent_avg_mct_ms > ok.innocent_avg_mct_ms * 10.0,
        "{} vs {}",
        collapse.innocent_avg_mct_ms,
        ok.innocent_avg_mct_ms
    );
}

#[test]
fn fig11_other_nics_have_no_noisy_neighbor() {
    let p = fig11_noisy::measure("cx6", 12, 24, 3);
    assert_eq!(p.rx_discards, 0);
    assert!(p.innocent_avg_mct_ms < 1.0, "{}", p.innocent_avg_mct_ms);
}

#[test]
fn interop_migreq_bug_and_fix() {
    let bug = interop::measure("e810-to-cx5", 16);
    let fixed = interop::measure("e810-to-cx5-migfix", 16);
    let baseline = interop::measure("cx5-to-cx5", 16);
    // Paper: ~500 discards at 16 QPs; we require hundreds.
    assert!(
        bug.responder_discards >= 100,
        "{}",
        bug.responder_discards
    );
    // Affected messages are at least an order of magnitude slower.
    let aff = bug.mct_affected_us.expect("affected messages exist");
    assert!(aff > bug.mct_clean_us * 10.0, "{aff} vs {}", bug.mct_clean_us);
    // The switch-side MigReq rewrite eliminates the problem entirely.
    assert_eq!(fixed.responder_discards, 0);
    assert!(fixed.mct_affected_us.is_none());
    // As does same-vendor communication.
    assert_eq!(baseline.responder_discards, 0);
}

#[test]
fn interop_scales_with_qps_and_spares_few_qps() {
    let small = interop::measure("e810-to-cx5", 8);
    let big = interop::measure("e810-to-cx5", 32);
    assert_eq!(small.responder_discards, 0, "≤8 QPs must be clean");
    assert!(big.responder_discards > 100, "{}", big.responder_discards);
}

#[test]
fn cnp_modes_inferred_for_all_nics() {
    for nic in ["cx4", "cx5", "cx6", "e810"] {
        let m = cnp_behavior::infer_mode(nic);
        assert_eq!(m.inferred, m.actual, "{nic}");
    }
}

#[test]
fn cnp_e810_hidden_interval() {
    let p = cnp_behavior::measure_interval("e810", 0);
    assert!(p.measured_min_us >= 49.0, "{}", p.measured_min_us);
    // NVIDIA honors the configuration instead.
    let cx5 = cnp_behavior::measure_interval("cx5", 4);
    assert!((3.9..25.0).contains(&cx5.measured_min_us), "{}", cx5.measured_min_us);
}

#[test]
fn adaptive_retrans_sequence_and_budget() {
    let seq = adaptive_retrans::timeout_sequence("cx6", true, 6);
    let paper = [5.6, 4.1, 8.4, 16.7, 25.1, 67.1];
    for (i, (&m, &p)) in seq.iter().zip(paper.iter()).enumerate() {
        assert!((m - p).abs() < 1.0, "timeout {i}: {m} vs paper {p}");
    }
    // Spec mode: every interval honors the configured 67.1 ms minimum.
    let spec = adaptive_retrans::timeout_sequence("cx6", false, 3);
    for ms in &spec {
        assert!(*ms >= 67.0, "{ms}");
    }
    // Retry budgets: 8–13 adaptive, exactly retry_cnt spec.
    let adaptive = adaptive_retrans::retries_until_error("cx6", true);
    assert!((8..=13).contains(&adaptive), "{adaptive}");
    let strict = adaptive_retrans::retries_until_error("cx6", false);
    assert_eq!(strict, 7);
}

#[test]
fn sec34_dumper_load_balancing_ratio() {
    let exp = sec34_dumper::run();
    let naive = &exp.points[0];
    let pool = &exp.points[1];
    // Paper: ~30 % → ~100 %.
    assert!(naive.success_ratio < 0.6, "{}", naive.success_ratio);
    assert!(!naive.integrity_passed);
    assert!(pool.success_ratio > 0.999, "{}", pool.success_ratio);
    assert!(pool.integrity_passed);
}

#[test]
fn sec5_switch_capacity_and_lossless_mirroring() {
    let r = sec5_switch::run();
    // Paper: ~1 MB for 100 K events / 10 K connections; same order.
    assert!(
        r.memory_bytes_100k_events_10k_conns < 2_500_000,
        "{}",
        r.memory_bytes_100k_events_10k_conns
    );
    assert!(r.pipeline_latency_ns < 400);
    assert_eq!(r.pressure_roce_rx, r.pressure_mirrored);
    assert!(r.pressure_integrity);
}

#[test]
fn table2_matches_paper() {
    let t = table2_bugs::run();
    for row in &t.rows {
        assert!(
            row.matches_paper(),
            "{}: detected {:?}, paper {:?}",
            row.finding,
            row.detected,
            row.paper
        );
    }
}
