//! The cross-NIC behavior matrix: determinism, parity with plain runs,
//! per-profile calibration signatures, and the differential-report golden.

use lumina_core::config::TestConfig;
use lumina_core::matrix::{cell_config, run_matrix, CellOutcome, MatrixParams, MatrixReport};
use lumina_core::orchestrator::run_test;
use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn demo_config() -> TestConfig {
    let yaml = std::fs::read_to_string(repo_root().join("configs/matrix_demo.yaml")).unwrap();
    TestConfig::from_yaml(&yaml).unwrap()
}

fn demo_matrix(workers: usize) -> MatrixReport {
    let params = MatrixParams {
        workers,
        ..MatrixParams::default()
    };
    run_matrix(&demo_config(), "matrix_demo", &params).unwrap()
}

fn rendered(report: &MatrixReport) -> String {
    let mut s = serde_json::to_string_pretty(&report.to_json().unwrap()).unwrap();
    s.push('\n');
    s
}

fn cell<'a>(report: &'a MatrixReport, device: &str) -> &'a CellOutcome {
    report
        .cells
        .iter()
        .find(|c| c.device == device && !c.quirked)
        .unwrap_or_else(|| panic!("{device} missing from matrix"))
}

#[test]
fn matrix_is_byte_identical_across_worker_counts() {
    // The acceptance bar: any --workers value and any repetition of the
    // same seed assemble the same report, byte for byte — human and JSON.
    let one = demo_matrix(1);
    let again = demo_matrix(1);
    let two = demo_matrix(2);
    let four = demo_matrix(4);
    assert_eq!(rendered(&one), rendered(&again), "same-seed reruns differ");
    assert_eq!(rendered(&one), rendered(&two), "workers=2 drifted");
    assert_eq!(rendered(&one), rendered(&four), "workers=4 drifted");
    assert_eq!(one.render_human(), four.render_human());
}

#[test]
fn single_device_cell_equals_plain_run() {
    // A one-column matrix is just `lumina-cli run` with the device
    // pinned: the embedded cell report must match that run byte for byte.
    let base = demo_config();
    let params = MatrixParams {
        devices: vec!["cx5".into()],
        include_reports: true,
        ..MatrixParams::default()
    };
    let report = run_matrix(&base, "matrix_demo", &params).unwrap();
    assert_eq!(report.devices, vec!["CX5".to_string()]);
    assert_eq!(report.cells.len(), 1);
    let cell_report = report.cells[0].report.as_ref().expect("embedded report");

    let pinned = cell_config(&base, "CX5", None);
    let plain = run_test(&pinned).unwrap().report_json().unwrap();
    assert_eq!(
        serde_json::to_string_pretty(cell_report).unwrap(),
        serde_json::to_string_pretty(&plain).unwrap(),
        "matrix cell and plain run disagree"
    );
}

#[test]
fn matrix_emits_cross_device_diffs() {
    let report = demo_matrix(1);
    assert_eq!(report.devices.len(), 5, "demo sweeps the whole registry");
    assert!(
        !report.diffs.is_empty(),
        "demo scenario must surface at least one behavioral diff"
    );
    // The E810 cnpSent counter lie (§6.2.4) is scenario-independent as
    // long as any CNP is emitted, so the demo pins it as a named diff.
    assert!(
        report
            .diffs
            .iter()
            .any(|d| d.metric == "counter-cnp-sent" && d.devices == ["E810"]),
        "E810 counter lie missing from diffs: {:?}",
        report.diffs
    );
}

#[test]
fn paper_nic_calibration_signatures() {
    // Per-profile signatures, observed through the matrix rather than the
    // profile struct: the slow NICs recover via timeout-scale waits, the
    // fast ones via quick fast-path retransmits, and the counter lies sit
    // exactly where §6.2.4 puts them.
    let report = demo_matrix(2);
    let m = |d: &str| cell(&report, d).metrics.clone().unwrap();

    for d in ["CX4LX", "CX5", "CX6DX", "E810", "CX8NEXT"] {
        assert_eq!(cell(&report, d).verdict, "compliant", "{d} not compliant");
        assert!(m(d).msgs_failed == 0, "{d} failed messages");
    }

    // E810 lies about CNPs; everyone else reports them faithfully.
    assert!(m("E810").cnps > 0 && m("E810").vendor_cnps == 0, "{:?}", m("E810"));
    for d in ["CX4LX", "CX5", "CX6DX", "CX8NEXT"] {
        assert_eq!(m(d).vendor_cnps, m(d).cnps, "{d} miscounts CNPs");
    }

    // Recovery-latency ordering the paper measures: CX5/CX6 Dx recover
    // an order faster than CX4 Lx and E810; the hypothetical next-gen
    // part is fastest of all.
    let mct = |d: &str| m(d).avg_mct_ns;
    assert!(mct("CX5") < mct("CX4LX"), "CX5 should beat CX4 Lx");
    assert!(mct("CX6DX") < mct("E810"), "CX6 Dx should beat E810");
    assert!(
        ["CX4LX", "CX5", "CX6DX", "E810"]
            .iter()
            .all(|d| mct("CX8NEXT") <= mct(d)),
        "control profile must be fastest"
    );
}

#[test]
fn quirk_overlay_doubles_columns_and_diffs_verdicts() {
    let yaml = std::fs::read_to_string(repo_root().join("configs/quirks_demo.yaml")).unwrap();
    let base = TestConfig::from_yaml(&yaml).unwrap();
    let params = MatrixParams {
        devices: vec!["cx5".into(), "e810".into()],
        workers: 2,
        ..MatrixParams::default()
    };
    let report = run_matrix(&base, "quirks_demo", &params).unwrap();
    assert!(report.quirk_overlay);
    assert_eq!(report.cells.len(), 4, "baseline + quirked per device");
    for d in ["CX5", "E810"] {
        assert_eq!(cell(&report, d).verdict, "compliant");
        let quirked = report
            .cells
            .iter()
            .find(|c| c.device == d && c.quirked)
            .unwrap();
        assert_eq!(quirked.verdict, "violations", "{d} quirk cell too clean");
        assert!(!quirked.violations.is_empty());
        assert!(
            report
                .diffs
                .iter()
                .any(|x| x.metric == "quirk-overlay" && x.devices == [d]),
            "{d} missing its quirk-overlay flip diff"
        );
    }
}

#[test]
fn unknown_device_is_a_config_error_naming_the_registry() {
    let params = MatrixParams {
        devices: vec!["cx9000".into()],
        ..MatrixParams::default()
    };
    let err = run_matrix(&demo_config(), "matrix_demo", &params).unwrap_err();
    assert_eq!(err.exit_code(), 2, "{err}");
    let msg = err.to_string();
    for name in ["CX4LX", "CX5", "CX6DX", "E810", "CX8NEXT"] {
        assert!(msg.contains(name), "error must list {name}: {msg}");
    }
}

#[test]
fn duplicate_queries_collapse_to_one_column() {
    // "cx5" and "CX-5" canonicalize to the same registry entry.
    let params = MatrixParams {
        devices: vec!["cx5".into(), "CX-5".into(), "e810".into()],
        ..MatrixParams::default()
    };
    let report = run_matrix(&demo_config(), "matrix_demo", &params).unwrap();
    assert_eq!(report.devices, vec!["CX5".to_string(), "E810".to_string()]);
}

#[test]
fn matrix_differential_report_matches_golden() {
    // The matrix differential report is part of the CLI surface: pin its
    // bytes like every run report. Regenerate with
    // `UPDATE_GOLDEN=1 cargo test --test device_matrix`.
    let actual = rendered(&demo_matrix(1));
    let path = repo_root().join("tests/golden/matrix_demo.matrix.json");
    if std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1") {
        std::fs::write(&path, &actual).unwrap();
        eprintln!("golden updated: {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e} (regenerate with UPDATE_GOLDEN=1)", path.display()));
    assert_eq!(expected, actual, "matrix differential report drifted");
}
