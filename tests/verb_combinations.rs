//! Verb combinations (§3.2): "the requester has the flexibility to post
//! verb combinations, such as Send and Read, facilitating the generation
//! of bi-directional data traffic."

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;

fn run(verb: &str, events: &str) -> lumina_core::orchestrator::TestResults {
    let yaml = format!(
        r#"
requester: {{ nic-type: cx5 }}
responder: {{ nic-type: cx5 }}
traffic:
  num-connections: 2
  rdma-verb: {verb}
  num-msgs-per-qp: 6
  mtu: 1024
  message-size: 10240
  data-pkt-events:{events}
"#
    );
    run_test(&TestConfig::from_yaml(&yaml).unwrap()).unwrap()
}

#[test]
fn send_plus_read_is_bidirectional() {
    let res = run("send+read", " []");
    assert!(res.traffic_completed());
    assert!(res.integrity.passed());
    // All bytes land despite alternating directions.
    let bytes: u64 = res
        .requester_metrics
        .flows
        .values()
        .map(|f| f.bytes)
        .sum();
    assert_eq!(bytes, 2 * 6 * 10_240);
    // Data payload flowed both ways: send payloads at the responder, read
    // response payloads at the requester.
    assert!(res.responder_counters.rx_bytes > 0, "send direction");
    assert!(res.requester_counters.rx_bytes > 0, "read direction");
    // Roughly half each (3 sends + 3 reads of equal size per QP).
    assert_eq!(res.responder_counters.rx_bytes, 6 * 10_240);
    assert_eq!(res.requester_counters.rx_bytes, 6 * 10_240);
}

#[test]
fn write_plus_read_with_drop_on_primary_direction() {
    // Events target the primary (first) verb's data direction: write
    // packets requester→responder.
    let res = run(
        "write+read",
        "\n    - {qpn: 1, psn: 2, type: drop, iter: 1}",
    );
    assert!(res.traffic_completed());
    assert_eq!(res.events_fired, 1);
    assert!(res.requester_counters.retransmitted_packets >= 1);
    // Mixed-verb ACK bookkeeping: nothing times out, nothing fails.
    let failed: u32 = res.requester_metrics.flows.values().map(|f| f.failed).sum();
    assert_eq!(failed, 0);
}

#[test]
fn all_three_verbs_combined() {
    let res = run("write+send+read", " []");
    assert!(res.traffic_completed());
    assert!(res.integrity.passed());
    assert_eq!(res.requester_counters.local_ack_timeout_err, 0);
    // 2 QPs × 6 msgs: per QP the cycle is W S R W S R → 2 reads per QP.
    assert_eq!(res.requester_counters.rx_bytes, 2 * 2 * 10_240);
}

#[test]
fn combo_with_unknown_verb_rejected() {
    let cfg = TestConfig::from_yaml(
        r#"
traffic:
  num-connections: 1
  rdma-verb: send+teleport
  num-msgs-per-qp: 1
  mtu: 1024
  message-size: 1024
"#,
    )
    .unwrap();
    assert!(cfg.problems().iter().any(|p| p.contains("rdma-verb")));
}
