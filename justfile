# Developer entry points. `just check` is the gate CI and pre-commit use.

# Build, test and lint everything, exactly as the release gate does.
check:
    cargo build --release
    cargo test -q
    cargo clippy -- -D warnings

# The full CI gate: release build, workspace tests (with the parallel-fuzz
# differential, golden-report, fault-matrix and quirk-matrix suites named
# explicitly so a filter change can't silently drop them — the fault matrix
# smokes every fault kind on fig11 and asserts same-seed degraded reports
# replay byte-identically; the quirk matrix injects every DUT misbehavior
# kind and asserts the conformance oracle flags each with its expected
# violation class), the device matrix (cross-NIC registry sweep:
# worker-count determinism, plain-run parity, per-profile calibration
# signatures and the differential-report golden), the panic guard (no
# unwrap/expect on capture-derived paths), the frame-plane hotpath smoke (asserts the identical-outcome
# column and the copy-reduction bar), the trace-determinism suite plus a
# live `trace` smoke with Perfetto export, the coverage-fuzzing suites
# (serial==parallel differential over map/corpus/reproducers; the 9-knob
# quirk sweep with the 2x fixed-budget acceptance) plus a live
# `fuzz-coverage` smoke through the CLI corpus-persistence path, the bench
# gate (fails on >20% regression against the newest committed
# BENCH_*.json), the pcap round-trip corpus (every preset re-ingests to
# its live verdict) plus a live `ingest` smoke through the CLI, the
# chaos/soak suite (noop-chaos byte-identity, the chaos×quirks
# cross-matrix, the recovery-oracle property tests) plus a live `soak`
# smoke sweeping every preset under generated chaos schedules, lint with
# warnings fatal.
ci:
    cargo build --release
    cargo test -q
    cargo test -q --test fuzz_parallel_differential
    cargo test -q --test fuzz_coverage_differential
    cargo test -q --test fuzz_quirk_coverage
    cargo test -q --test golden_reports
    cargo test -q --test fault_matrix
    cargo test -q --test quirk_matrix
    cargo test -q --test device_matrix
    cargo test -q --test panic_guard
    cargo test -q --test trace_determinism
    cargo test -q --test ingest_roundtrip
    cargo test -q --test chaos_soak
    cargo test -q -p lumina-bench hotpath
    just trace
    just fuzz-coverage
    just matrix
    just ingest
    just soak
    just bench-gate
    cargo clippy -- -D warnings

# Fast feedback loop: debug build + tests.
test:
    cargo test --workspace -q

# Lint the whole workspace, warnings fatal.
lint:
    cargo clippy --workspace --all-targets -- -D warnings

# Run one test config end to end and show the human report.
demo config="configs/listing2.yaml":
    cargo run --release -p lumina-core --bin lumina-cli -- {{config}}

# Dump the telemetry journal + per-node metrics for a config.
telemetry config="configs/listing2.yaml":
    cargo run --release -p lumina-core --bin lumina-cli -- telemetry --config {{config}}

# Per-packet latency dissection with Perfetto export (load the JSON at
# ui.perfetto.dev). Doubles as the CI smoke test for the tracing path.
trace config="configs/fig11_noisy_neighbor.yaml" out="perfetto.json":
    cargo run --release -p lumina-core --bin lumina-cli -- trace --config {{config}} --perfetto {{out}}

# Coverage-guided fuzzing smoke: a short campaign on the quirks demo with
# the quirk-knob mutation dimension, persisting the novelty corpus and the
# shrunk per-class reproducer YAMLs to a scratch dir. Doubles as the CI
# smoke for the coverage/shrink/corpus-persistence CLI path.
fuzz-coverage config="configs/quirks_demo.yaml" out="target/fuzz-corpus":
    mkdir -p {{out}}
    cargo run --release -p lumina-core --bin lumina-cli -- fuzz --config {{config}} --corpus-dir {{out}} --quirk-knobs --generations 4 --batch 4 --seed 7 > {{out}}/findings.jsonl

# Cross-NIC behavior matrix: the demo scenario swept over the whole
# device registry, with per-cell conformance verdicts and the
# cross-device behavior diffs. Doubles as the CI smoke for the
# device-registry + matrix CLI path (byte-identical for any --workers).
matrix config="configs/matrix_demo.yaml":
    cargo run --release -p lumina-core --bin lumina-cli -- matrix --config {{config}} --workers 4

# Real-capture ingestion smoke: run the fig11 preset with pcap export,
# then grade the capture offline. `ingest` exits 0 only when the offline
# verdict is compliant AND the file re-ingested pristine, so this recipe
# failing means the export→ingest round trip no longer reproduces the
# live verdict. Doubles as the CI smoke for the pcap → frame-recovery →
# streaming-reconstruction → discovery-conformance path.
ingest config="configs/fig11_noisy_neighbor.yaml" out="target/ingest-smoke.pcap":
    cargo run --release -p lumina-core --bin lumina-cli -- {{config}} --pcap {{out}}
    cargo run --release -p lumina-core --bin lumina-cli -- ingest --pcap {{out}} --config {{config}}

# Deterministic chaos soak: every preset swept under generated chaos
# schedules (link flaps, pause storms, loss/corruption/reorder bursts),
# each run graded by the liveness/recovery oracle; exits 11 on a proven
# wedge. Byte-identical output for any --workers value. Doubles as the
# CI smoke for the chaos-plane + soak CLI path. The chaos_demo preset is
# skipped by design: it declares its own schedule (and its flap is
# *supposed* to wedge — run it with `just demo configs/chaos_demo.yaml`).
soak configs="configs" scenarios="2" workers="4":
    cargo run --release -p lumina-core --bin lumina-cli -- soak --configs {{configs}} --scenarios {{scenarios}} --workers {{workers}}

# Compare current performance against the newest committed BENCH_*.json;
# exits 1 on a >20% regression. Record a new baseline with
# `cargo run --release -p lumina-bench --bin bench-gate -- --write BENCH_<date>.json`.
bench-gate:
    cargo run --release -p lumina-bench --bin bench-gate

# Criterion-style benchmarks (shimmed harness; wall-clock smoke numbers).
bench:
    cargo bench -p lumina-bench
