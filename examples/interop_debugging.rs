//! The §6.2.3 debugging story, step by step: how Lumina localized the
//! CX5↔E810 interoperability bug to the BTH MigReq bit.
//!
//! 1. Run E810→CX5 Send traffic at 16 QPs; observe RX discards and slow
//!    first messages.
//! 2. Dump the trace; diff the headers against a CX5→CX5 run — the only
//!    difference is `MigReq`: E810 sends 0, NVIDIA sends 1.
//! 3. Extend the injector with a `set-mig-1` action and rewrite every
//!    packet; the discards vanish, confirming the hypothesis.
//!
//! ```text
//! cargo run --release --example interop_debugging
//! ```

use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;

fn run(req: &str, rsp: &str, fix: bool) -> lumina_core::orchestrator::TestResults {
    let events = if fix {
        (1..=16)
            .map(|q| format!("\n    - {{qpn: {q}, psn: 1, type: set-mig-1, iter: 1, every: 1}}"))
            .collect::<String>()
    } else {
        " []".to_string()
    };
    let yaml = format!(
        r#"
requester: {{ nic-type: {req} }}
responder: {{ nic-type: {rsp} }}
traffic:
  num-connections: 16
  rdma-verb: send
  num-msgs-per-qp: 5
  mtu: 1024
  message-size: 102400
  data-pkt-events:{events}
network:
  horizon-ms: 60000
"#
    );
    run_test(&TestConfig::from_yaml(&yaml).unwrap()).unwrap()
}

fn mct_spread(res: &lumina_core::orchestrator::TestResults) -> (f64, f64) {
    let mcts: Vec<f64> = res
        .requester_metrics
        .flows
        .values()
        .flat_map(|f| f.mcts.iter().map(|t| t.as_micros_f64()))
        .collect();
    let min = mcts.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = mcts.iter().cloned().fold(0.0, f64::max);
    (min, max)
}

fn main() {
    println!("== §6.2.3: debugging the CX5↔E810 interoperability problem ==\n");

    println!("step 1 — reproduce: E810 → CX5, Send, 16 QPs, 5 × 100 KB each");
    let bug = run("e810", "cx5", false);
    let (lo, hi) = mct_spread(&bug);
    println!(
        "  rx_discards_phy on CX5: {}   (paper: ~500 at 16 QPs)",
        bug.responder_counters.rx_discards_phy
    );
    println!("  MCT spread: {lo:.0} µs … {hi:.0} µs — first messages suffer\n");

    println!("step 2 — inspect the dumped trace: what differs from CX5→CX5?");
    let trace = bug.trace.as_ref().expect("trace");
    let migreq_zero = trace
        .iter()
        .filter(|e| e.frame.bth.opcode.is_request() && !e.frame.bth.mig_req)
        .count();
    let migreq_one = trace
        .iter()
        .filter(|e| e.frame.bth.opcode.is_request() && e.frame.bth.mig_req)
        .count();
    println!("  request packets with MigReq=0: {migreq_zero} (all from the E810)");
    println!("  request packets with MigReq=1: {migreq_one}");
    let baseline = run("cx5", "cx5", false);
    let baseline_zero = baseline
        .trace
        .as_ref()
        .unwrap()
        .iter()
        .filter(|e| e.frame.bth.opcode.is_request() && !e.frame.bth.mig_req)
        .count();
    println!(
        "  CX5→CX5 baseline: MigReq=0 packets: {baseline_zero}, discards: {}\n",
        baseline.responder_counters.rx_discards_phy
    );

    println!("step 3 — confirm: rewrite MigReq to 1 at the switch (set-mig-1)");
    let fixed = run("e810", "cx5", true);
    let (flo, fhi) = mct_spread(&fixed);
    println!(
        "  rx_discards_phy on CX5: {}   MCT spread: {flo:.0} µs … {fhi:.0} µs",
        fixed.responder_counters.rx_discards_phy
    );
    println!(
        "  mig rewrites applied by the injector: {}\n",
        fixed.switch_counters.injected_mig_rewrites
    );

    if bug.responder_counters.rx_discards_phy > 0
        && fixed.responder_counters.rx_discards_phy == 0
    {
        println!(">>> hypothesis confirmed: the MigReq mismatch drives CX5's APM slow path.");
    } else {
        println!(">>> unexpected outcome — model drifted, check calibration.");
    }
}
