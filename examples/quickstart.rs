//! Quickstart: run the paper's Listing-2 test end to end.
//!
//! Builds the simulated testbed (two hosts with the NIC under test, the
//! event-injector switch, a dumper pool), injects the three events of
//! Listing 2 — an ECN mark, a drop, and a drop of the retransmission —
//! reconstructs the packet trace, runs the integrity check and the
//! built-in analyzers, and prints the collected results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lumina_core::analyzers::{cnp, counter, gbn_fsm, retrans_perf};
use lumina_core::config::TestConfig;
use lumina_core::orchestrator::run_test;

const LISTING2: &str = r#"
requester:
  nic-type: cx4
  dcqcn-rp-enable: false
  dcqcn-np-enable: true
  min-time-between-cnps-us: 0
  adaptive-retrans: false
responder:
  nic-type: cx4
  dcqcn-np-enable: true
traffic:
  num-connections: 2
  rdma-verb: write
  num-msgs-per-qp: 10
  mtu: 1024
  message-size: 10240
  multi-gid: true
  barrier-sync: true
  tx-depth: 1
  min-retransmit-timeout: 14
  max-retransmit-retry: 7
  data-pkt-events:
    # Mark ECN on the 4th pkt of the 1st QP conn
    - {qpn: 1, psn: 4, type: ecn, iter: 1}
    # Drop the 5th pkt of the 2nd QP conn
    - {qpn: 2, psn: 5, type: drop, iter: 1}
    # Drop the retransmitted 5th pkt of the 2nd QP conn
    - {qpn: 2, psn: 5, type: drop, iter: 2}
"#;

fn main() {
    let cfg = TestConfig::from_yaml(LISTING2).expect("Listing 2 parses");
    println!("== Lumina quickstart: the paper's Listing 2 on a CX4 Lx model ==\n");

    let results = run_test(&cfg).expect("test runs");

    println!("-- run --");
    println!("finished at       : {}", results.end_time);
    println!("traffic completed : {}", results.traffic_completed());
    println!(
        "events fired      : {} (unfired: {})",
        results.events_fired, results.events_unfired
    );

    println!("\n-- integrity check (§3.5) --");
    println!("passed            : {}", results.integrity.passed());
    let trace = results.trace.as_ref().expect("trace reconstructed");
    println!("trace packets     : {}", trace.len());

    println!("\n-- traffic generator log --");
    for c in &results.conns {
        let f = &results.requester_metrics.flows[&c.requester.qpn];
        println!(
            "conn {}: {} msgs, goodput {:.2} Gbps, avg MCT {}",
            c.index,
            f.completed,
            f.goodput_gbps(),
            f.avg_mct().unwrap()
        );
    }

    println!("\n-- NIC counters (vendor names) --");
    for (name, v) in &results.requester_vendor_counters {
        if *v != 0 {
            println!("requester {name:>28}: {v}");
        }
    }
    for (name, v) in &results.responder_vendor_counters {
        if *v != 0 {
            println!("responder {name:>28}: {v}");
        }
    }

    println!("\n-- analyzers (§4) --");
    let gbn = gbn_fsm::analyze(trace, &results.conns);
    println!(
        "Go-back-N FSM     : {} ({} NACKs, {} OOO episodes)",
        if gbn.compliant() { "compliant" } else { "VIOLATIONS" },
        gbn.per_conn.iter().map(|c| c.nacks).sum::<u32>(),
        gbn.per_conn.iter().map(|c| c.ooo_episodes).sum::<u32>(),
    );
    for b in retrans_perf::analyze(trace, &results.conns) {
        println!(
            "retransmission    : conn {} psn {} via {:?}, gen {:?}, react {:?}, total {}",
            b.conn_index, b.dropped_psn, b.kind, b.nack_gen, b.nack_react,
            b.total()
        );
    }
    let cnp_rep = cnp::analyze(trace);
    println!(
        "CNPs              : {} generated for {} CE-marked packets",
        cnp_rep.total_cnps, cnp_rep.total_ce_marked
    );
    let findings = counter::analyze(&results);
    println!("counter analyzer  : {} inconsistencies", findings.len());
    for f in findings {
        println!("  !! {} {}: {}", f.host, f.counter, f.detail);
    }

    // Export the reconstructed trace as a pcap for Wireshark.
    let path = std::env::temp_dir().join("lumina_quickstart.pcap");
    let file = std::fs::File::create(&path).expect("create pcap");
    let n = trace.write_pcap(file).expect("write pcap");
    println!("\nwrote {n}-packet trace to {}", path.display());
}
