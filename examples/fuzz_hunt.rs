//! Fuzzing for the noisy neighbor (§4 Algorithm 1 + §6.2.2).
//!
//! Reproduces how the paper *found* the CX4 Lx noisy-neighbor bug: a
//! genetic fuzzing campaign over traffic/event configurations, scored by
//! how badly flows *without* injected events degrade. On the CX4 Lx model
//! the campaign converges on configurations with many concurrent
//! drop-injected Read connections; on the CX5 model the same campaign
//! finds nothing.
//!
//! ```text
//! cargo run --release --example fuzz_hunt          # default: cx4
//! cargo run --release --example fuzz_hunt cx5      # negative control
//! ```

use lumina_core::config::TestConfig;
use lumina_core::fuzz::mutate::EventMutator;
use lumina_core::fuzz::score::noisy_neighbor_score;
use lumina_core::fuzz::{fuzz, FuzzParams};

fn main() {
    let nic = std::env::args().nth(1).unwrap_or_else(|| "cx4".into());
    println!("== Genetic fuzzing for the noisy neighbor on {} ==\n", nic.to_uppercase());

    let base = TestConfig::from_yaml(&format!(
        r#"
requester: {{ nic-type: {nic} }}
responder: {{ nic-type: {nic} }}
traffic:
  num-connections: 16
  rdma-verb: read
  num-msgs-per-qp: 3
  mtu: 1024
  message-size: 20480
network:
  horizon-ms: 60000
"#
    ))
    .expect("base config");

    let mut mutator = EventMutator {
        max_connections: Some(30),
        ..Default::default()
    };
    let params = FuzzParams {
        pool_size: 6,
        iterations: 25,
        accept_prob: 0.25,
        anomaly_threshold: 8.0,
        seed: 0xbeef,
        // batch_size / workers defaults: the outcome is identical for any
        // worker count, so the hunt stays reproducible on every host.
        ..FuzzParams::default()
    };
    let outcome = fuzz(&base, &mut mutator, noisy_neighbor_score, &params);

    println!("evaluated {} configurations ({} rejected)", outcome.history.len(), outcome.rejected);
    println!(
        "score trajectory: {}",
        outcome
            .history
            .iter()
            .map(|s| format!("{s:.1}"))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!("\nanomalies above threshold: {}", outcome.anomalies.len());
    for (scored, desc) in outcome.anomalies.iter().take(3) {
        println!(
            "  score {:>7.1}: {} conns, verb {}, {} events — {}",
            scored.score,
            scored.cfg.traffic.num_connections,
            scored.cfg.traffic.rdma_verb,
            scored.cfg.traffic.data_pkt_events.len(),
            desc
        );
    }
    match outcome.best {
        Some(best) if best.score >= params.anomaly_threshold => {
            println!("\n>>> bug-triggering configuration found (score {:.1}):", best.score);
            println!("{}", best.cfg.to_yaml());
        }
        Some(best) => {
            println!(
                "\nno anomaly crossed the threshold (best score {:.1}) — expected on healthy NICs",
                best.score
            );
        }
        None => println!("\nno configuration executed successfully"),
    }
}
