//! ETS work-conservation study (§6.2.1 of the paper).
//!
//! Reproduces Figure 10 on the CX6 Dx model and contrasts it with a
//! work-conserving device (the CX5 model) — the ablation that pinpoints
//! the non-work-conserving scheduler as the cause of the throughput loss.
//!
//! ```text
//! cargo run --release --example ets_scheduler
//! ```

use lumina_bench::fig10_ets;

fn main() {
    println!("== ETS work conservation (§6.2.1, Figure 10) ==");
    println!("Two QPs, 1 MB Writes, DCQCN on; QP0 ECN-marked 1-in-50 in the");
    println!("ECN settings. A work-conserving scheduler lets QP1 take the");
    println!("bandwidth QP0 leaves idle; the CX6 Dx does not.\n");

    for nic in ["cx6", "cx5"] {
        let fig = fig10_ets::run_on(nic, 10);
        println!(
            "--- {} ({}) ---",
            nic.to_uppercase(),
            if nic == "cx6" {
                "the buggy device"
            } else {
                "work-conserving ablation"
            }
        );
        for b in &fig.bars {
            println!(
                "{:>22}: QP0 {:>5.1} Gbps | QP1 {:>5.1} Gbps",
                b.setting, b.qp0_gbps, b.qp1_gbps
            );
        }
        let vanilla = fig.get("multi-queue-vanilla");
        let ecn = fig.get("multi-queue-ecn");
        let single = fig.get("single-queue-ecn");
        let conserving = ecn.qp1_gbps > vanilla.qp1_gbps * 1.15;
        println!(
            "verdict: multi-queue QP1 {} spare bandwidth (ECN: {:.1} vs vanilla {:.1}; \
             single-queue shows {:.1} is reachable)\n",
            if conserving { "DOES absorb" } else { "does NOT absorb" },
            ecn.qp1_gbps,
            vanilla.qp1_gbps,
            single.qp1_gbps
        );
    }
}
