//! Retransmission micro-behavior study (§6.1 of the paper).
//!
//! Sweeps drops across all four NIC models for Write and Read traffic and
//! prints the NACK-generation / NACK-reaction breakdown of Figure 5 — a
//! compact version of Figures 8 and 9.
//!
//! ```text
//! cargo run --release --example retransmission_study
//! ```

use lumina_bench::fig08_09_retrans;

fn main() {
    println!("== Retransmission micro-behaviors (§6.1) ==");
    println!("100 KB message, single connection, drop one packet mid-message;");
    println!("latencies measured at the switch, half-RTT-corrected.\n");

    let mut points = Vec::new();
    for nic in ["cx4", "cx5", "cx6", "e810"] {
        for verb in ["write", "read"] {
            points.push(fig08_09_retrans::measure(nic, verb, 40));
        }
    }

    println!(
        "{:<6} {:<6} {:>16} {:>16} {:>16}",
        "nic", "verb", "NACK gen (us)", "NACK react (us)", "total (us)"
    );
    println!("{}", "-".repeat(66));
    for p in &points {
        println!(
            "{:<6} {:<6} {:>16.1} {:>16.1} {:>16.1}",
            p.nic.to_uppercase(),
            p.verb,
            p.nack_gen_us,
            p.nack_react_us,
            p.nack_gen_us + p.nack_react_us
        );
    }

    println!("\nObservations (cf. the paper's §6.1):");
    let gen = |nic: &str, verb: &str| {
        points
            .iter()
            .find(|p| p.nic == nic && p.verb == verb)
            .unwrap()
    };
    println!(
        "* CX5/CX6 Dx recover in single-digit microseconds ({:.1}/{:.1} us total for Write).",
        gen("cx5", "write").nack_gen_us + gen("cx5", "write").nack_react_us,
        gen("cx6", "write").nack_gen_us + gen("cx6", "write").nack_react_us,
    );
    println!(
        "* CX4 Lx reacts in the hundreds of microseconds ({:.0} us) — ~100 base RTTs.",
        gen("cx4", "write").nack_react_us
    );
    println!(
        "* Read loss detection rides a slow path: {:.0} us on CX4 Lx, {:.0} ms on E810.",
        gen("cx4", "read").nack_gen_us,
        gen("e810", "read").nack_gen_us / 1000.0
    );
}
